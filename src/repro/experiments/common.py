"""Shared scenario presets for the per-figure experiments.

Durations are scaled down from the paper's 20-minute session so every
figure regenerates in seconds on a laptop; pass ``duration_s`` explicitly
to run at paper scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..app.session import ScenarioConfig
from ..phy.params import CrossTrafficConfig, CrossTrafficPhase, RanConfig
from ..sim.units import seconds


def idle_cell_scenario(
    duration_s: float = 30.0, seed: int = 7, **overrides
) -> ScenarioConfig:
    """Monitored UE alone in the cell (Figs 5, 9a, 10, §5 benches)."""
    return ScenarioConfig(
        duration_s=duration_s,
        seed=seed,
        access="5g",
        cross_traffic=None,
        **overrides,
    )


def cross_traffic_scenario(
    duration_s: float = 80.0,
    seed: int = 7,
    phase_rates_mbps: Sequence[float] = (0.0, 14.0, 16.0, 18.0),
    ran: Optional[RanConfig] = None,
    **overrides,
) -> ScenarioConfig:
    """The paper's §2 experiment: phased cross traffic from six mobiles.

    The paper uses four five-minute phases at 0/14/16/18 Mbps; by default
    we keep the phase structure but compress each phase to a quarter of the
    run.
    """
    phase_len = seconds(duration_s / len(phase_rates_mbps))
    phases = [
        CrossTrafficPhase(start_us=i * phase_len, rate_kbps=rate * 1_000)
        for i, rate in enumerate(phase_rates_mbps)
    ]
    return ScenarioConfig(
        duration_s=duration_s,
        seed=seed,
        access="5g",
        ran=ran or RanConfig(),
        cross_traffic=CrossTrafficConfig(phases=phases),
        **overrides,
    )


def saturating_scenario(
    duration_s: float = 90.0,
    seed: int = 7,
    overload_mbps: float = 34.0,
    **overrides,
) -> ScenarioConfig:
    """Cross traffic briefly exceeding uplink capacity (drives Fig 8's
    >1 s delay spikes and the persistent 14 fps adaptation)."""
    third = seconds(duration_s / 3)
    phases = [
        CrossTrafficPhase(start_us=0, rate_kbps=10_000),
        CrossTrafficPhase(start_us=third, rate_kbps=overload_mbps * 1_000),
        CrossTrafficPhase(start_us=2 * third, rate_kbps=8_000),
    ]
    return ScenarioConfig(
        duration_s=duration_s,
        seed=seed,
        access="5g",
        cross_traffic=CrossTrafficConfig(phases=phases),
        **overrides,
    )


def emulated_scenario(
    duration_s: float = 30.0,
    seed: int = 7,
    rate_kbps: float = 0.0,
    **overrides,
) -> ScenarioConfig:
    """The Fig 7 wired baseline: tc-shaped link at the cell's capacity with
    a fixed 15 ms latency."""
    return ScenarioConfig(
        duration_s=duration_s,
        seed=seed,
        access="emulated",
        emulated_rate_kbps=rate_kbps,
        record_tbs=False,
        **overrides,
    )
