"""Extension — the jitter-buffer tradeoff (§2's three VCA options).

"When the network cannot provide [stable low latency], VCAs are left with
three options": reduce the sending rate, expand the jitter buffer at the
cost of mouth-to-ear delay, or accept a higher risk of stalls.  This
experiment sweeps the receiver's playout margin over the same jittery 5G
session and maps out the delay-vs-stall frontier the paper alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..app.session import run_session
from ..core.report import format_table
from .common import cross_traffic_scenario


@dataclass
class BufferPoint:
    """Outcome of one jitter-buffer sizing."""

    margin_ms: float
    beta: float
    mouth_to_ear_ms: float  # median capture -> render delay
    stalls: int
    frames_rendered: int

    @property
    def stall_rate(self) -> float:
        """Stalls per rendered frame."""
        if self.frames_rendered == 0:
            return float("nan")
        return self.stalls / self.frames_rendered


@dataclass
class ExtJitterBufferResult:
    """The delay-vs-stall frontier."""

    points: List[BufferPoint] = field(default_factory=list)

    def summary(self) -> str:
        """Bench-ready table."""
        rows = [
            [f"{p.margin_ms:.0f} ms / beta {p.beta:.0f}",
             p.mouth_to_ear_ms, p.stalls, f"{100 * p.stall_rate:.2f}%"]
            for p in self.points
        ]
        return format_table(
            ["buffer sizing", "mouth-to-ear p50 (ms)", "stalls",
             "stall rate"],
            rows,
        )


def run_ext_jitterbuffer(
    duration_s: float = 40.0,
    seed: int = 7,
    sizings: Sequence = ((2.0, 1.0), (10.0, 4.0), (40.0, 8.0), (120.0, 12.0)),
) -> ExtJitterBufferResult:
    """Sweep the playout margin over the same jittery 5G session."""
    result = ExtJitterBufferResult()
    for margin_ms, beta in sizings:
        config = cross_traffic_scenario(
            duration_s=duration_s,
            seed=seed,
            phase_rates_mbps=(10.0, 18.0),
            record_tbs=False,
            jitter_buffer_margin_ms=margin_ms,
            jitter_buffer_beta=beta,
        )
        session = run_session(config)
        video = [f for f in session.trace.frames
                 if f.stream == "video" and f.rendered_us is not None]
        delays = [(f.rendered_us - f.capture_us) / 1_000.0 for f in video]
        result.points.append(
            BufferPoint(
                margin_ms=margin_ms,
                beta=beta,
                mouth_to_ear_ms=float(np.median(delays)) if delays else float("nan"),
                stalls=session.receiver.jitter_buffer.stalls,
                frames_rendered=len(video),
            )
        )
    return result
