"""Fig 5 — Delay spread introduced in the RAN uplink.

During a no-cross-traffic period, media units leave the sender back-to-back
(spread ≈ 0) but arrive at the 5G core spread out "in increments of 2.5 ms"
— the TDD uplink period — because proactive grants carry only one or two
packets per uplink slot (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.api import AthenaSession
from ..core.report import distribution_table
from ..trace.schema import CapturePoint
from .common import cached_run_session, idle_cell_scenario


@dataclass
class Fig5Result:
    """Delay spread distributions at the sender and at the 5G core."""

    sender_ms: List[float]
    core_ms: List[float]
    quantization_step_ms: float
    quantization_score: float

    def medians(self) -> Tuple[float, float]:
        """(sender, core) median spread."""
        s = float(np.median(self.sender_ms)) if self.sender_ms else float("nan")
        c = float(np.median(self.core_ms)) if self.core_ms else float("nan")
        return s, c

    def summary(self) -> str:
        """Bench-ready table plus the detected quantization step."""
        table = distribution_table(
            {"spread@sender": self.sender_ms, "spread@5G-core": self.core_ms}
        )
        return (
            f"{table}\n"
            f"detected spread quantization: {self.quantization_step_ms:.1f} ms "
            f"(score {self.quantization_score:.4f}; 0 = perfect lattice)"
        )


def run_fig5(duration_s: float = 40.0, seed: int = 7) -> Fig5Result:
    """Regenerate Fig 5's spread CDFs on an otherwise idle cell."""
    config = idle_cell_scenario(duration_s=duration_s, seed=seed,
                                record_tbs=False)
    result = cached_run_session(config)
    athena = AthenaSession(result.trace)
    sender = athena.delay_spread_cdf(CapturePoint.SENDER)
    core = athena.delay_spread_cdf(CapturePoint.CORE)
    step, score = athena.spread_quantization(CapturePoint.CORE)
    return Fig5Result(
        sender_ms=sender,
        core_ms=core,
        quantization_step_ms=step,
        quantization_score=score,
    )
