"""CSV export of figure data for external plotting.

Each figure result type knows how to dump the exact series the paper
plots — CDF samples, time series, or sweep tables — as plain CSV files, so
any plotting tool (gnuplot, pandas/matplotlib, R) can regenerate the
visuals.  Dispatch is by result type via :func:`functools.singledispatch`.
"""

from __future__ import annotations

import csv
from functools import singledispatch
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .ablations import AblationResult
from .ext_app_classes import ExtAppClassesResult
from .ext_gcc_contexts import ExtGccContextsResult
from .ext_jitterbuffer import ExtJitterBufferResult
from .ext_l4s import ExtL4sResult
from .fig3_owd import Fig3Result
from .fig4_audio_video import Fig4Result
from .fig5_delay_spread import Fig5Result
from .fig7_qoe import Fig7Result
from .fig8_adaptation import Fig8Result
from .fig9_scheduling import Fig9aResult, Fig9bResult
from .fig10_gcc import Fig10Result
from .sec52_aware_ran import Sec52Result
from .sec53_ran_aware_cc import Sec53Result

PathLike = Union[str, Path]


def _write_csv(path: Path, headers: Sequence[str],
               rows: Sequence[Sequence[object]]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def _write_cdf(path: Path, name: str, values: Sequence[float]) -> Path:
    ordered = sorted(values)
    n = max(1, len(ordered))
    rows = [(v, (i + 1) / n) for i, v in enumerate(ordered)]
    return _write_csv(path, [name, "cdf"], rows)


@singledispatch
def export_figure_data(result, directory: PathLike) -> List[Path]:
    """Write a figure result's plottable series as CSVs under ``directory``."""
    raise TypeError(f"no CSV exporter registered for {type(result).__name__}")


@export_figure_data.register
def _(result: Fig3Result, directory: PathLike) -> List[Path]:
    directory = Path(directory)
    written = []
    for name, series in result.series.items():
        written.append(_write_csv(
            directory / f"fig3_{name}.csv", ["send_time_s", "owd_ms"], series
        ))
    return written


@export_figure_data.register
def _(result: Fig4Result, directory: PathLike) -> List[Path]:
    directory = Path(directory)
    return [
        _write_cdf(directory / "fig4_audio.csv", "ran_delay_ms", result.audio_ms),
        _write_cdf(directory / "fig4_video.csv", "ran_delay_ms", result.video_ms),
    ]


@export_figure_data.register
def _(result: Fig5Result, directory: PathLike) -> List[Path]:
    directory = Path(directory)
    return [
        _write_cdf(directory / "fig5_sender.csv", "spread_ms", result.sender_ms),
        _write_cdf(directory / "fig5_core.csv", "spread_ms", result.core_ms),
    ]


@export_figure_data.register
def _(result: Fig7Result, directory: PathLike) -> List[Path]:
    directory = Path(directory)
    written = []
    panels: Dict[str, Dict[str, Sequence[float]]] = {
        "fig7a_bitrate_kbps": {
            "5g": result.qoe_5g.receive_bitrate_kbps,
            "emulated": result.qoe_emulated.receive_bitrate_kbps,
        },
        "fig7b_jitter_ms": {
            "5g": result.qoe_5g.frame_jitter_ms,
            "emulated": result.qoe_emulated.frame_jitter_ms,
        },
        "fig7c_fps": {
            "5g": result.qoe_5g.frame_rate_fps,
            "emulated": result.qoe_emulated.frame_rate_fps,
        },
        "fig7d_ssim": {
            "5g": result.qoe_5g.ssim,
            "emulated": result.qoe_emulated.ssim,
        },
    }
    for panel, series in panels.items():
        for access, values in series.items():
            written.append(_write_cdf(
                directory / f"{panel}_{access}.csv", panel, values
            ))
    return written


@export_figure_data.register
def _(result: Fig8Result, directory: PathLike) -> List[Path]:
    directory = Path(directory)
    series = result.series
    headers = ["time_s", "fps", "delay_p50_ms", "delay_p95_ms"] + sorted(
        series.bitrate_kbps_by_layer
    )
    rows = []
    for i, t in enumerate(series.window_s):
        row = [t, series.frame_rate_fps[i], series.delay_ms_p50[i],
               series.delay_ms_p95[i]]
        row += [series.bitrate_kbps_by_layer[k][i]
                for k in sorted(series.bitrate_kbps_by_layer)]
        rows.append(row)
    transitions = [(t, mode.value) for t, mode in result.mode_transitions]
    return [
        _write_csv(directory / "fig8_timeseries.csv", headers, rows),
        _write_csv(directory / "fig8_transitions.csv",
                   ["time_s", "mode"], transitions),
    ]


@export_figure_data.register
def _(result: Fig9aResult, directory: PathLike) -> List[Path]:
    return [_export_timeline(result.timeline, Path(directory), "fig9a")]


@export_figure_data.register
def _(result: Fig9bResult, directory: PathLike) -> List[Path]:
    return [_export_timeline(result.timeline, Path(directory), "fig9b")]


def _export_timeline(timeline, directory: Path, prefix: str) -> Path:
    rows = []
    for p in timeline.packets:
        rows.append(["packet", p.packet_id, p.kind.value, p.send_us,
                     p.core_us if p.core_us is not None else "", "", ""])
    for tb in timeline.transport_blocks:
        rows.append(["tb", tb.tb_id, tb.kind.value, tb.slot_us, "",
                     tb.size_bits, tb.used_bits])
    return _write_csv(
        directory / f"{prefix}_timeline.csv",
        ["record", "id", "kind", "time_us", "core_us", "size_bits",
         "used_bits"],
        rows,
    )


@export_figure_data.register
def _(result: Fig10Result, directory: PathLike) -> List[Path]:
    rows = [
        (s.index, s.filtered_gradient, s.modified_trend, s.threshold,
         s.signal.value)
        for s in result.history.samples
    ]
    return [_write_csv(
        Path(directory) / "fig10_gradient.csv",
        ["sample", "filtered_gradient", "modified_trend", "threshold",
         "signal"],
        rows,
    )]


@export_figure_data.register
def _(result: Sec52Result, directory: PathLike) -> List[Path]:
    written = []
    for name, outcome in result.outcomes.items():
        slug = name.replace("(", "_").replace(")", "")
        written.append(_write_cdf(
            Path(directory) / f"sec52_{slug}.csv", "frame_delay_ms",
            outcome.frame_delay_ms,
        ))
    return written


@export_figure_data.register
def _(result: Sec53Result, directory: PathLike) -> List[Path]:
    c = result.comparison
    rows = [
        ("vanilla", c.vanilla_overuse_count, c.vanilla_overuse_fraction),
        ("masked", c.masked_overuse_count, c.masked_overuse_fraction),
    ]
    return [_write_csv(
        Path(directory) / "sec53_overuse.csv",
        ["variant", "overuse_count", "overuse_fraction"], rows,
    )]


@export_figure_data.register
def _(result: AblationResult, directory: PathLike) -> List[Path]:
    rows = [(p.label, p.owd_p50_ms, p.owd_p95_ms, p.spread_p50_ms)
            for p in result.points]
    slug = result.name.replace(" ", "_")
    return [_write_csv(
        Path(directory) / f"ablation_{slug}.csv",
        ["config", "owd_p50_ms", "owd_p95_ms", "spread_p50_ms"], rows,
    )]


@export_figure_data.register
def _(result: ExtGccContextsResult, directory: PathLike) -> List[Path]:
    rows = [(p.label, p.overuse_fraction, p.gradient_std, p.owd_p50_ms)
            for p in result.points]
    return [_write_csv(
        Path(directory) / "ext_gcc_contexts.csv",
        ["context", "overuse_fraction", "gradient_std", "owd_p50_ms"], rows,
    )]


@export_figure_data.register
def _(result: ExtAppClassesResult, directory: PathLike) -> List[Path]:
    rows = [
        (c.name, c.owd_p50_ms, c.owd_p95_ms, c.burst_spread_p50_ms,
         c.alignment_share, c.queueing_share, c.spread_share, c.harq_share)
        for c in result.classes
    ]
    return [_write_csv(
        Path(directory) / "ext_app_classes.csv",
        ["class", "owd_p50_ms", "owd_p95_ms", "spread_p50_ms",
         "align_share", "queue_share", "segment_share", "harq_share"], rows,
    )]


@export_figure_data.register
def _(result: ExtL4sResult, directory: PathLike) -> List[Path]:
    rows = [
        (o.name, o.mark_fraction, o.final_rate_kbps, o.min_rate_kbps)
        for o in (result.naive, result.aware)
    ]
    return [_write_csv(
        Path(directory) / "ext_l4s.csv",
        ["marker", "mark_fraction", "final_rate_kbps", "min_rate_kbps"], rows,
    )]


@export_figure_data.register
def _(result: ExtJitterBufferResult, directory: PathLike) -> List[Path]:
    rows = [
        (p.margin_ms, p.beta, p.mouth_to_ear_ms, p.stalls, p.stall_rate)
        for p in result.points
    ]
    return [_write_csv(
        Path(directory) / "ext_jitterbuffer.csv",
        ["margin_ms", "beta", "mouth_to_ear_ms", "stalls", "stall_rate"],
        rows,
    )]
