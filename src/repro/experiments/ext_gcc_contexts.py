"""Extension — GCC across physical-layer contexts (§5.1 future work).

The paper plans "a GCC simulator that evaluates video-conferencing behavior
in various physical-layer contexts.  For example, ... different base
stations use different duplexing strategies ... resulting in differing
impacts on application-layer latencies."

This experiment runs the same idle-cell call under different duplexing and
channel configurations and measures how badly each misleads the delay-
gradient detector: phantom-overuse fraction and gradient volatility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..cc.base import PacketArrival
from ..cc.gcc import GccConfig, GccEstimator
from ..core.report import format_table
from ..phy.params import RanConfig
from ..trace.schema import CapturePoint
from .common import cached_run_session, idle_cell_scenario


@dataclass
class ContextPoint:
    """GCC's behaviour under one PHY configuration."""

    label: str
    overuse_fraction: float
    gradient_std: float
    owd_p50_ms: float


@dataclass
class ExtGccContextsResult:
    """The §5.1 matrix: PHY context -> CC misbehaviour."""

    points: List[ContextPoint] = field(default_factory=list)

    def by_label(self) -> Dict[str, ContextPoint]:
        """Index the matrix by configuration label."""
        return {p.label: p for p in self.points}

    def summary(self) -> str:
        """Bench-ready table."""
        rows = [
            [p.label, f"{100 * p.overuse_fraction:.2f}%",
             round(p.gradient_std, 4), p.owd_p50_ms]
            for p in self.points
        ]
        return format_table(
            ["PHY context", "phantom overuse", "gradient std",
             "uplink OWD p50 (ms)"],
            rows,
        )


def _gcc_on_trace(trace) -> GccEstimator:
    estimator = GccEstimator(GccConfig(burst_time_us=0))
    arrivals = []
    for p in trace.packets:
        send = p.capture_at(CapturePoint.SENDER)
        arrival = p.capture_at(CapturePoint.RECEIVER)
        if send is None or arrival is None:
            continue
        arrivals.append(PacketArrival(p.packet_id, send, arrival, p.size_bytes))
    for a in sorted(arrivals, key=lambda x: x.arrival_us):
        estimator.on_packet(a)
    return estimator


def run_ext_gcc_contexts(
    duration_s: float = 30.0, seed: int = 7
) -> ExtGccContextsResult:
    """Measure GCC's phantom-overuse rate per PHY configuration."""
    contexts: Dict[str, RanConfig] = {
        "TDD DDDSU, BLER 8%": RanConfig(),
        "TDD DDDSU, clean channel": RanConfig(base_bler=0.0, retx_bler=0.0),
        "TDD DDSUU (denser UL)": RanConfig(tdd_pattern="DDSUU"),
        "TDD DDDDDDDDSU (sparser UL)": RanConfig(tdd_pattern="DDDDDDDDSU"),
        "FDD, clean channel": RanConfig(fdd=True, base_bler=0.0,
                                        retx_bler=0.0),
        "TDD DDDSU, BLER 25%": RanConfig(base_bler=0.25, retx_bler=0.25),
    }
    result = ExtGccContextsResult()
    for label, ran in contexts.items():
        session = cached_run_session(
            idle_cell_scenario(duration_s=duration_s, seed=seed, ran=ran,
                               record_tbs=False)
        )
        estimator = _gcc_on_trace(session.trace)
        grads = [s.filtered_gradient for s in estimator.history.samples]
        owds = [
            d / 1_000
            for p in session.trace.packets
            if (d := p.one_way_delay_us(CapturePoint.SENDER,
                                        CapturePoint.CORE)) is not None
        ]
        result.points.append(
            ContextPoint(
                label=label,
                overuse_fraction=estimator.history.overuse_fraction(),
                gradient_std=float(np.std(grads)) if grads else float("nan"),
                owd_p50_ms=float(np.median(owds)) if owds else float("nan"),
            )
        )
    return result
