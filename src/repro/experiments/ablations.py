"""Ablations over the design choices §3 and §5.1 call out.

* proactive grants on/off (the ~10 ms benefit for sporadic packets);
* BSR scheduling-delay sweep (the grant-loop latency);
* HARQ failure-probability sweep (delay inflation vs channel quality);
* duplexing sweep: TDD patterns with different uplink densities and the
  FDD limit (§5.1: "different base stations use different duplexing
  strategies ... resulting in differing impacts on application-layer
  latencies").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..app.session import run_session
from ..core.report import format_table
from ..phy.params import RanConfig
from ..run.batch import RunSpec, run_batch
from ..run.scenario import ScenarioConfig, SessionResult
from ..sim.units import ms, us_to_ms
from ..trace.schema import CapturePoint
from .common import experiment_cache, idle_cell_scenario


@dataclass
class AblationPoint:
    """Uplink delay statistics for one configuration."""

    label: str
    owd_p50_ms: float
    owd_p95_ms: float
    spread_p50_ms: float


@dataclass
class AblationResult:
    """One sweep's points in order."""

    name: str
    points: List[AblationPoint] = field(default_factory=list)

    def summary(self) -> str:
        """Bench-ready sweep table."""
        rows = [
            [p.label, p.owd_p50_ms, p.owd_p95_ms, p.spread_p50_ms]
            for p in self.points
        ]
        return f"{self.name}\n" + format_table(
            ["config", "uplink OWD p50 (ms)", "p95 (ms)", "spread p50 (ms)"],
            rows,
        )


def collect_ablation_point(result: SessionResult) -> AblationPoint:
    """Batch collector: reduce one run to its uplink-delay statistics."""
    from ..core.api import AthenaSession

    athena = AthenaSession(result.trace)
    owds = [
        us_to_ms(d)
        for p in result.trace.packets
        if (d := p.one_way_delay_us(CapturePoint.SENDER, CapturePoint.CORE))
        is not None
    ]
    spreads = athena.delay_spread_cdf(CapturePoint.CORE, stream="video")
    return AblationPoint(
        label="",
        owd_p50_ms=float(np.median(owds)) if owds else float("nan"),
        owd_p95_ms=float(np.percentile(owds, 95)) if owds else float("nan"),
        spread_p50_ms=float(np.median(spreads)) if spreads else float("nan"),
    )


def _measure(config) -> AblationPoint:
    return collect_ablation_point(run_session(config))


def _sweep(
    name: str,
    labeled: Sequence[Tuple[str, ScenarioConfig]],
    jobs: Optional[int] = None,
) -> AblationResult:
    """Execute one sweep's configurations through the batch executor."""
    runs = run_batch(
        [RunSpec(label, config) for label, config in labeled],
        collect=collect_ablation_point,
        jobs=jobs,
        cache=experiment_cache(),
    )
    result = AblationResult(name=name)
    for run in runs:
        run.value.label = run.label
        result.points.append(run.value)
    return result


def sweep_proactive(
    duration_s: float = 20.0, seed: int = 7, jobs: Optional[int] = None
) -> AblationResult:
    """Proactive grants on vs off (SR+BSR only)."""
    labeled = [
        (
            "proactive" if enabled else "BSR/SR only",
            idle_cell_scenario(
                duration_s=duration_s, seed=seed,
                ran=RanConfig(proactive_grants=enabled), record_tbs=False,
            ),
        )
        for enabled in (True, False)
    ]
    return _sweep("proactive grants", labeled, jobs=jobs)


def sweep_bsr_delay(
    duration_s: float = 20.0,
    seed: int = 7,
    delays_ms: Sequence[float] = (5.0, 10.0, 20.0),
    jobs: Optional[int] = None,
) -> AblationResult:
    """BSR scheduling-delay sweep."""
    labeled = []
    for delay in delays_ms:
        # Clean channel and a fixed large bitrate so the BSR loop (not HARQ
        # or rate adaptation) is the only moving part.
        ran = RanConfig(bsr_sched_delay_us=ms(delay), sr_sched_delay_us=ms(delay),
                        base_bler=0.0, retx_bler=0.0)
        labeled.append((
            f"{delay:.0f} ms",
            idle_cell_scenario(duration_s=duration_s, seed=seed, ran=ran,
                               fixed_bitrate_kbps=1_200.0, record_tbs=False),
        ))
    return _sweep("BSR scheduling delay", labeled, jobs=jobs)


def sweep_bler(
    duration_s: float = 20.0,
    seed: int = 7,
    blers: Sequence[float] = (0.0, 0.08, 0.25),
    jobs: Optional[int] = None,
) -> AblationResult:
    """HARQ failure-probability sweep."""
    labeled = [
        (
            f"BLER {bler:.2f}",
            idle_cell_scenario(
                duration_s=duration_s, seed=seed,
                ran=RanConfig(base_bler=bler, retx_bler=bler),
                record_tbs=False,
            ),
        )
        for bler in blers
    ]
    return _sweep("block error rate", labeled, jobs=jobs)


def sweep_duplexing(
    duration_s: float = 20.0, seed: int = 7, jobs: Optional[int] = None
) -> AblationResult:
    """TDD-pattern / FDD sweep (§5.1)."""
    configs: Dict[str, RanConfig] = {
        "TDD DDDSU (UL/2.5ms)": RanConfig(tdd_pattern="DDDSU"),
        "TDD DDSUU (2xUL/2.5ms)": RanConfig(tdd_pattern="DDSUU"),
        "TDD DDDDDDDDSU (UL/5ms)": RanConfig(tdd_pattern="DDDDDDDDSU"),
        "FDD (UL every slot)": RanConfig(fdd=True),
    }
    labeled = [
        (
            label,
            idle_cell_scenario(duration_s=duration_s, seed=seed, ran=ran,
                               record_tbs=False),
        )
        for label, ran in configs.items()
    ]
    return _sweep("duplexing strategy", labeled, jobs=jobs)


def sweep_scheduler_policy(
    duration_s: float = 30.0,
    seed: int = 7,
    overload_mbps: float = 34.0,
    jobs: Optional[int] = None,
) -> AblationResult:
    """Grant-serving policy under overload: round-robin vs cell-wide FIFO.

    With FIFO, backlogged cross-traffic UEs hold the head of the grant
    queue and the light VCA flow starves — one plausible mechanism behind
    the multi-second delays real cells exhibit under load (Fig 8).
    """
    from ..phy.params import CrossTrafficConfig, CrossTrafficPhase
    from ..sim.units import seconds

    labeled = []
    for policy in ("round_robin", "fifo"):
        ran = RanConfig(scheduler_policy=policy)
        config = idle_cell_scenario(duration_s=duration_s, seed=seed, ran=ran,
                                    record_tbs=False)
        third = seconds(duration_s / 3)
        config.cross_traffic = CrossTrafficConfig(
            phases=[
                CrossTrafficPhase(0, 8_000.0),
                CrossTrafficPhase(third, overload_mbps * 1_000),
                CrossTrafficPhase(2 * third, 8_000.0),
            ]
        )
        labeled.append((policy, config))
    return _sweep(
        "requested-grant serving policy (overload)", labeled, jobs=jobs
    )


def sweep_rlc_mode(
    duration_s: float = 20.0,
    seed: int = 7,
    bler: float = 0.45,
    jobs: Optional[int] = None,
) -> AblationResult:
    """RLC UM vs AM on a bad channel: loss vs delay-tail tradeoff.

    UM (the low-latency media bearer) drops packets when HARQ exhausts;
    AM recovers them at the cost of multi-RTT delay inflation.
    """
    labeled = [
        (
            f"RLC {mode.upper()}",
            idle_cell_scenario(
                duration_s=duration_s, seed=seed,
                ran=RanConfig(base_bler=bler, retx_bler=bler,
                              max_harq_rounds=1, rlc_mode=mode,
                              rlc_max_retx=6),
                fixed_bitrate_kbps=600.0, record_tbs=False,
            ),
        )
        for mode in ("um", "am")
    ]
    return _sweep("RLC mode (bad channel)", labeled, jobs=jobs)
