"""Extension — L4S-style explicit signalling under RAN artifacts (§5.3).

The paper closes with an open question: "how should control of the
accelerate-brake signal be defined in the presence of retransmissions due
to (unpredictable) loss versus the more predictable delay spikes and
spreads that we observe with Athena?"

This experiment quantifies the problem and the telemetry-informed answer:
a naive L4S marker that CE-marks on uplink sojourn time brakes the sender
on *idle-network* scheduling/HARQ artifacts, while a marker that excludes
the PHY-attributed components (using the same telemetry as §5.3) only
signals genuine queue build-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.report import format_table
from ..mitigation.l4s import EcnMarker, L4sRateController, sojourn_of
from ..sim.units import TimeUs, ms
from ..trace.schema import CapturePoint
from .common import cached_run_session, idle_cell_scenario


@dataclass
class L4sOutcome:
    """One marker variant's effect on the sender."""

    name: str
    mark_fraction: float
    final_rate_kbps: float
    min_rate_kbps: float


@dataclass
class ExtL4sResult:
    """Naive vs RAN-aware CE marking on the same idle-cell trace."""

    naive: L4sOutcome
    aware: L4sOutcome

    def summary(self) -> str:
        """Bench-ready comparison table."""
        rows = [
            [o.name, f"{100 * o.mark_fraction:.1f}%", o.final_rate_kbps,
             o.min_rate_kbps]
            for o in (self.naive, self.aware)
        ]
        return format_table(
            ["marker", "CE-mark fraction", "final rate kbps", "min rate kbps"],
            rows,
        )


def _drive_controller(
    marked_flags: List[Tuple[TimeUs, bool]],
    update_interval_us: TimeUs = ms(100.0),
) -> L4sRateController:
    controller = L4sRateController(initial_rate_kbps=900.0)
    next_update = update_interval_us
    for arrival, ce in sorted(marked_flags):
        while arrival >= next_update:
            controller.update_rate()
            next_update += update_interval_us
        controller.on_packet_feedback(ce)
    controller.update_rate()
    return controller


def run_ext_l4s(
    duration_s: float = 30.0, seed: int = 7, threshold_ms: float = 5.0
) -> ExtL4sResult:
    """Compare naive vs telemetry-aware CE marking on an idle cell."""
    config = idle_cell_scenario(duration_s=duration_s, seed=seed,
                                fixed_bitrate_kbps=900.0, record_tbs=False)
    result = cached_run_session(config)

    naive_marker = EcnMarker(threshold_us=ms(threshold_ms))
    aware_marker = EcnMarker(threshold_us=ms(threshold_ms),
                             exclude_ran_artifacts=True)
    naive_flags: List[Tuple[TimeUs, bool]] = []
    aware_flags: List[Tuple[TimeUs, bool]] = []
    for packet in result.trace.packets:
        arrival = packet.capture_at(CapturePoint.CORE)
        if arrival is None or packet.ran is None:
            continue
        sojourn = sojourn_of(packet)
        naive_flags.append((arrival, naive_marker.mark(packet, sojourn)))
        aware_flags.append((arrival, aware_marker.mark(packet, sojourn)))

    naive_ctl = _drive_controller(naive_flags)
    aware_ctl = _drive_controller(aware_flags)

    def min_rate(flags) -> float:
        controller = L4sRateController(initial_rate_kbps=900.0)
        lowest = controller.rate_kbps
        next_update = ms(100.0)
        for arrival, ce in sorted(flags):
            while arrival >= next_update:
                lowest = min(lowest, controller.update_rate())
                next_update += ms(100.0)
            controller.on_packet_feedback(ce)
        return lowest

    return ExtL4sResult(
        naive=L4sOutcome(
            name="naive (sojourn only)",
            mark_fraction=naive_marker.mark_fraction,
            final_rate_kbps=naive_ctl.rate_kbps,
            min_rate_kbps=min_rate(naive_flags),
        ),
        aware=L4sOutcome(
            name="RAN-aware (artifacts excluded)",
            mark_fraction=aware_marker.mark_fraction,
            final_rate_kbps=aware_ctl.rate_kbps,
            min_rate_kbps=min_rate(aware_flags),
        ),
    )
