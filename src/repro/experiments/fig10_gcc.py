"""Fig 10 — GCC on an idle private 5G network detects phantom overuse.

One VCA flow, no competing traffic: the network is consistently idle, yet
the filtered one-way delay gradient fluctuates with the RAN's scheduling
quantization (2.5 ms slots, ~10 ms BSR loop, 10 ms HARQ steps) and crosses
the adaptive threshold, so the detector repeatedly declares overuse —
"falsely react[ing] to phantom network fluctuations" (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..app.session import run_session
from ..cc.base import BandwidthSignal, EstimatorHistory
from ..core.report import format_table
from .common import idle_cell_scenario


@dataclass
class Fig10Result:
    """The estimator's diagnostic series over an idle-cell session."""

    history: EstimatorHistory

    def gradient_series(self) -> List[float]:
        """Filtered delay gradient (trendline slope) per sample."""
        return [s.filtered_gradient for s in self.history.samples]

    def threshold_series(self) -> List[float]:
        """Adaptive threshold per sample (modified-trend scale)."""
        return [s.threshold for s in self.history.samples]

    def overuse_events(self) -> int:
        """Number of samples the detector flagged as overuse."""
        return self.history.overuse_count()

    def gradient_volatility(self) -> float:
        """Standard deviation of the filtered gradient (idle net ⇒ ~0 ideal)."""
        grads = self.gradient_series()
        return float(np.std(grads)) if grads else float("nan")

    def summary(self) -> str:
        """Bench-ready report of the phantom-overuse behaviour."""
        signals = [s.signal for s in self.history.samples]
        rows = [
            ["samples", len(signals)],
            ["overuse samples", self.overuse_events()],
            ["overuse fraction", self.history.overuse_fraction()],
            ["underuse samples",
             sum(1 for s in signals if s == BandwidthSignal.UNDERUSE)],
            ["gradient std", self.gradient_volatility()],
            ["gradient min",
             min(self.gradient_series()) if signals else float("nan")],
            ["gradient max",
             max(self.gradient_series()) if signals else float("nan")],
        ]
        return format_table(["quantity", "value"], rows)


def run_fig10(
    duration_s: float = 60.0, seed: int = 7, per_packet: bool = True
) -> Fig10Result:
    """Regenerate Fig 10's filtered-gradient/overuse series.

    The paper plots the gradient against *packet index*, i.e. it evaluates
    the filter per packet rather than per 5 ms send group — which is what
    makes the RAN's 2.5 ms delay spread look like queue growth.  Set
    ``per_packet=False`` for WebRTC's default grouping.
    """
    from ..cc.base import PacketArrival
    from ..cc.gcc import GccConfig, GccEstimator
    from ..trace.schema import CapturePoint

    config = idle_cell_scenario(
        duration_s=duration_s, seed=seed, estimator="gcc", record_tbs=False
    )
    result = run_session(config)
    if not per_packet:
        return Fig10Result(history=result.receiver.estimator.history)
    estimator = GccEstimator(GccConfig(burst_time_us=0))
    arrivals = []
    for p in result.trace.packets:
        send = p.capture_at(CapturePoint.SENDER)
        arrival = p.capture_at(CapturePoint.RECEIVER)
        if send is None or arrival is None:
            continue
        arrivals.append(
            PacketArrival(
                packet_id=p.packet_id,
                send_us=send,
                arrival_us=arrival,
                size_bytes=p.size_bytes,
            )
        )
    arrivals.sort(key=lambda a: a.arrival_us)
    for arrival in arrivals:
        estimator.on_packet(arrival)
    return Fig10Result(history=estimator.history)
