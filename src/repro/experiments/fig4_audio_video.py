"""Fig 4 — Zoom audio experiences lower RAN delay than video.

Audio samples rarely span multiple packets, so they are only delayed when
sent alongside a video frame's burst; video frames suffer the frame-level
delay spread of §3.1 on every burst.  Under heavy cross traffic both tails
stretch out toward seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.api import AthenaSession
from ..core.report import distribution_table
from .common import cached_run_session, cross_traffic_scenario


@dataclass
class Fig4Result:
    """RAN (sender→core) delay distributions per media kind."""

    audio_ms: List[float]
    video_ms: List[float]

    def medians(self) -> Dict[str, float]:
        """Median RAN delay per media kind."""
        return {
            "audio": float(np.median(self.audio_ms)) if self.audio_ms else float("nan"),
            "video": float(np.median(self.video_ms)) if self.video_ms else float("nan"),
        }

    def tail(self, q: float = 99.0) -> Dict[str, float]:
        """Tail percentile per media kind (the paper notes a long audio tail)."""
        return {
            "audio": float(np.percentile(self.audio_ms, q)) if self.audio_ms else float("nan"),
            "video": float(np.percentile(self.video_ms, q)) if self.video_ms else float("nan"),
        }

    def summary(self) -> str:
        """Bench-ready distribution table."""
        return distribution_table({"audio": self.audio_ms, "video": self.video_ms})


def run_fig4(duration_s: float = 80.0, seed: int = 7) -> Fig4Result:
    """Regenerate Fig 4's audio/video RAN-delay CDFs."""
    config = cross_traffic_scenario(duration_s=duration_s, seed=seed,
                                    record_tbs=False)
    result = cached_run_session(config)
    athena = AthenaSession(result.trace)
    by_media = athena.ran_delay_by_media()
    return Fig4Result(audio_ms=by_media["audio"], video_ms=by_media["video"])
