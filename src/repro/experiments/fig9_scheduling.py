"""Fig 9 — Time-series examples of the cross-layer Zoom trace.

(a) Link-layer scheduling: a video frame's packet burst trickles out over
    proactive TBs in 2.5 ms steps until the BSR-requested grant arrives
    ~10 ms later and drains the buffer; over-granting leaves requested TBs
    unused.
(b) Link-layer retransmissions: failed TBs inflate the delay of the packets
    they carry in 10 ms multiples; even empty TBs get retransmitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.api import AthenaSession, SchedulingTimeline
from ..core.report import format_table
from ..phy.params import RanConfig
from ..sim.units import ms, seconds, us_to_ms
from ..trace.schema import CapturePoint, MediaKind, TbKind
from .common import cached_run_session, idle_cell_scenario


@dataclass
class Fig9aResult:
    """Scheduling timeline plus the frame-burst statistics it explains."""

    timeline: SchedulingTimeline
    frame_spread_ms: List[float]
    proactive_utilization: float
    requested_utilization: float
    unused_requested_tbs: int
    requested_tbs: int

    def median_spread_ms(self) -> float:
        """Median frame-level delay spread in the analyzed run."""
        return float(np.median(self.frame_spread_ms)) if self.frame_spread_ms else float("nan")

    def summary(self) -> str:
        """Bench-ready description of the Fig 9a mechanism."""
        tl = self.timeline
        rows = [
            ["proactive TBs in window",
             sum(1 for tb in tl.transport_blocks if tb.kind == TbKind.PROACTIVE)],
            ["requested TBs in window",
             sum(1 for tb in tl.transport_blocks if tb.kind == TbKind.REQUESTED)],
            ["unused (over-granted) TBs in window", len(tl.unused_tbs())],
            ["median frame spread (ms)", self.median_spread_ms()],
            ["proactive grant utilization", self.proactive_utilization],
            ["requested grant utilization", self.requested_utilization],
            ["unused requested TBs (run-wide)",
             f"{self.unused_requested_tbs}/{self.requested_tbs}"],
        ]
        return format_table(["quantity", "value"], rows)


@dataclass
class Fig9bResult:
    """Retransmission timeline plus the delay-inflation statistics."""

    timeline: SchedulingTimeline
    retx_tbs: int
    total_tbs: int
    empty_retx_tbs: int
    inflation_no_retx_ms: List[float]
    inflation_with_retx_ms: List[float]

    def mean_inflation_step_ms(self) -> float:
        """Mean extra delay of retransmitted packets over clean ones."""
        if not self.inflation_no_retx_ms or not self.inflation_with_retx_ms:
            return float("nan")
        return float(
            np.mean(self.inflation_with_retx_ms) - np.mean(self.inflation_no_retx_ms)
        )

    def summary(self) -> str:
        """Bench-ready description of the Fig 9b mechanism."""
        rows = [
            ["TBs with retransmissions", f"{self.retx_tbs}/{self.total_tbs}"],
            ["empty TBs retransmitted", self.empty_retx_tbs],
            ["clean packet delay (ms, mean)",
             float(np.mean(self.inflation_no_retx_ms)) if self.inflation_no_retx_ms else float("nan")],
            ["retx packet delay (ms, mean)",
             float(np.mean(self.inflation_with_retx_ms)) if self.inflation_with_retx_ms else float("nan")],
            ["delay inflation per retx (ms)", self.mean_inflation_step_ms()],
        ]
        return format_table(["quantity", "value"], rows)


def _find_burst_window(athena: AthenaSession, min_packets: int = 4):
    """Locate a video-frame burst to center the Fig 9 window on."""
    for frame in athena.trace.frames:
        if frame.stream == "video" and len(frame.packet_ids) >= min_packets:
            start = frame.capture_us
            return max(0, start - ms(5.0)), start + ms(115.0)
    return 0, ms(120.0)


def run_fig9a(duration_s: float = 20.0, seed: int = 7) -> Fig9aResult:
    """Regenerate Fig 9(a): the scheduling delay-spread mechanism."""
    config = idle_cell_scenario(
        duration_s=duration_s,
        seed=seed,
        fixed_bitrate_kbps=900.0,  # several packets per frame, as in the trace
        record_tbs=True,
    )
    config.ran.base_bler = 0.0  # isolate scheduling from HARQ
    config.ran.retx_bler = 0.0
    result = cached_run_session(config)
    athena = AthenaSession(result.trace)
    start, end = _find_burst_window(athena)
    timeline = athena.scheduling_timeline(start, end)
    spreads = [
        s for s in athena.delay_spread_cdf(CapturePoint.CORE, stream="video")
    ]
    eff = athena.grant_efficiency()
    requested = [
        tb for tb in result.trace.transport_blocks if tb.kind == TbKind.REQUESTED
    ]
    return Fig9aResult(
        timeline=timeline,
        frame_spread_ms=spreads,
        proactive_utilization=eff[TbKind.PROACTIVE.value],
        requested_utilization=eff[TbKind.REQUESTED.value],
        unused_requested_tbs=sum(1 for tb in requested if tb.is_empty),
        requested_tbs=len(requested),
    )


def run_fig9b(
    duration_s: float = 30.0, seed: int = 7, bler: float = 0.25
) -> Fig9bResult:
    """Regenerate Fig 9(b): HARQ delay inflation in 10 ms steps."""
    ran = RanConfig(base_bler=bler, retx_bler=bler)
    config = idle_cell_scenario(
        duration_s=duration_s,
        seed=seed,
        ran=ran,
        fixed_bitrate_kbps=900.0,
        record_tbs=True,
    )
    result = cached_run_session(config)
    athena = AthenaSession(result.trace)
    start, end = _find_burst_window(athena)
    timeline = athena.scheduling_timeline(start, end + ms(40.0))
    clean: List[float] = []
    inflated: List[float] = []
    for packet in result.trace.packets:
        if packet.kind != MediaKind.VIDEO or packet.ran is None:
            continue
        owd_us = packet.one_way_delay_us(CapturePoint.SENDER, CapturePoint.CORE)
        if owd_us is None:
            continue
        if packet.ran.harq_rounds == 1:
            inflated.append(us_to_ms(owd_us))
        elif packet.ran.harq_rounds == 0:
            clean.append(us_to_ms(owd_us))
    tbs = result.trace.transport_blocks
    return Fig9bResult(
        timeline=timeline,
        retx_tbs=sum(1 for tb in tbs if tb.is_retx),
        total_tbs=len(tbs),
        empty_retx_tbs=sum(1 for tb in tbs if tb.is_retx and tb.is_empty),
        inflation_no_retx_ms=clean,
        inflation_with_retx_ms=inflated,
    )
