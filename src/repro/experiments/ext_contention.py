"""Extension — cell contention: per-call QoE vs number of concurrent calls.

The paper studies one conference in the cell; real cells host several.
This experiment retires that assumption: N concurrent calls (each a full
sender/receiver stack with its own congestion controller and adaptation
loop) share one constrained TDD cell, and we measure how per-call QoE
degrades as the cell fills — then how much of the damage the §5.2
application-aware scheduler recovers when it arbitrates grants *across*
calls (one :class:`~repro.mitigation.aware_ran.AppAwareAdvisor` per call,
composed through
:class:`~repro.mitigation.aware_ran.MultiCallAdvisor`).

The cell is deliberately small (default 12 uplink PRBs, ~2.5 Mbps nominal)
so two to four calls move it from comfortable to saturated; every point
runs through the parallel batch executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.report import format_table
from ..phy.params import RanConfig
from ..run.batch import RunSpec, collect_call_summaries, run_batch
from .common import experiment_cache
from ..run.scenario import CallSpec, ScenarioConfig


def contention_scenario(
    n_calls: int,
    duration_s: float = 10.0,
    seed: int = 7,
    n_ul_prbs: int = 12,
    aware_ran: bool = False,
    **overrides,
) -> ScenarioConfig:
    """N identical calls sharing one small cell (no cross traffic)."""
    return ScenarioConfig(
        duration_s=duration_s,
        seed=seed,
        access="5g",
        ran=RanConfig(n_ul_prbs=n_ul_prbs),
        cross_traffic=None,
        record_tbs=False,
        aware_ran=aware_ran,
        calls=[CallSpec(call_id=k) for k in range(n_calls)],
        **overrides,
    )


@dataclass
class ContentionPoint:
    """One (call count, scheduler mode) cell: per-call rows + aggregates."""

    n_calls: int
    aware_ran: bool
    per_call: List[Dict[str, float]]

    @property
    def mean_bitrate_kbps(self) -> float:
        return float(np.mean([row["bitrate_kbps"] for row in self.per_call]))

    @property
    def mean_frame_delay_ms(self) -> float:
        return float(
            np.mean([row["mean_frame_delay_ms"] for row in self.per_call])
        )

    @property
    def mean_fps(self) -> float:
        return float(np.mean([row["fps"] for row in self.per_call]))

    @property
    def stall_count(self) -> int:
        return int(sum(row["stalls"] for row in self.per_call))


@dataclass
class ExtContentionResult:
    """QoE vs concurrent calls, baseline scheduler vs §5.2 arbitration."""

    baseline: List[ContentionPoint]
    aware: List[ContentionPoint]

    def series(self, aware_ran: bool) -> List[ContentionPoint]:
        """The points of one scheduler mode, ordered by call count."""
        points = self.aware if aware_ran else self.baseline
        return sorted(points, key=lambda p: p.n_calls)

    def summary(self) -> str:
        """Bench-ready table: one row per call count, both schedulers."""
        rows = []
        for base, aw in zip(self.series(False), self.series(True)):
            rows.append(
                [
                    base.n_calls,
                    f"{base.mean_bitrate_kbps:.0f}",
                    f"{base.mean_frame_delay_ms:.1f}",
                    base.stall_count,
                    f"{aw.mean_bitrate_kbps:.0f}",
                    f"{aw.mean_frame_delay_ms:.1f}",
                    aw.stall_count,
                ]
            )
        return format_table(
            [
                "calls",
                "bitrate kbps",
                "frame delay ms",
                "stalls",
                "bitrate kbps (§5.2)",
                "frame delay ms (§5.2)",
                "stalls (§5.2)",
            ],
            rows,
        )


def run_ext_contention(
    duration_s: float = 10.0,
    seed: int = 7,
    max_calls: int = 4,
    n_ul_prbs: int = 12,
    jobs: Optional[int] = None,
) -> ExtContentionResult:
    """Sweep 1..max_calls concurrent calls, with and without §5.2."""
    specs: List[RunSpec] = []
    for aware in (False, True):
        mode = "aware" if aware else "baseline"
        for n_calls in range(1, max_calls + 1):
            specs.append(
                RunSpec(
                    label=f"{mode}/calls{n_calls}",
                    config=contention_scenario(
                        n_calls,
                        duration_s=duration_s,
                        seed=seed,
                        n_ul_prbs=n_ul_prbs,
                        aware_ran=aware,
                    ),
                )
            )
    runs = run_batch(
        specs, collect=collect_call_summaries, jobs=jobs, cache=experiment_cache()
    )
    baseline: List[ContentionPoint] = []
    aware: List[ContentionPoint] = []
    for spec, run in zip(specs, runs):
        is_aware = run.label.startswith("aware/")
        point = ContentionPoint(
            n_calls=len(spec.config.calls or []),
            aware_ran=is_aware,
            per_call=run.value,
        )
        (aware if is_aware else baseline).append(point)
    return ExtContentionResult(baseline=baseline, aware=aware)
