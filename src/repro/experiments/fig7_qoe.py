"""Fig 7 — 5G degradation: QoE in 5G vs an equal-capacity wired network.

The baseline emulates the cellular capacity (calculated from the physical
transport-block sizes of the 5G run) behind a fixed 15 ms latency using a
tc-style shaper.  The paper finds 5G consistently worse on receive bitrate
(7a), frame-level jitter (7b), frame rate (7c), and SSIM (7d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..app.session import run_session
from ..core.report import format_table
from ..media.quality import QoeSummary, percentile
from ..phy.ran import nominal_ul_capacity_kbps
from ..run.batch import RunSpec, collect_qoe, run_batch
from .common import cross_traffic_scenario, emulated_scenario, experiment_cache


@dataclass
class Fig7Result:
    """QoE summaries of the two access networks."""

    qoe_5g: QoeSummary
    qoe_emulated: QoeSummary
    emulated_rate_kbps: float

    def comparison(self) -> Dict[str, Dict[str, float]]:
        """Median of each Fig 7 metric for both networks."""
        return {"5g": self.qoe_5g.medians(), "emulated": self.qoe_emulated.medians()}

    def summary(self) -> str:
        """Bench-ready side-by-side table."""
        m5, me = self.qoe_5g.medians(), self.qoe_emulated.medians()
        rows = [
            ["7a receive bitrate (kbps, p50)", m5["bitrate_kbps"], me["bitrate_kbps"]],
            ["7b frame jitter (ms, p50)", m5["jitter_ms"], me["jitter_ms"]],
            ["7b frame jitter (ms, p90)",
             percentile(self.qoe_5g.frame_jitter_ms, 90),
             percentile(self.qoe_emulated.frame_jitter_ms, 90)],
            ["7c frame rate (fps, p50)", m5["fps"], me["fps"]],
            ["7d SSIM (p50)", m5["ssim"], me["ssim"]],
            ["stalls", self.qoe_5g.stall_count, self.qoe_emulated.stall_count],
        ]
        return format_table(["metric", "5G", "emulated"], rows)


def run_fig7(
    duration_s: float = 60.0,
    seed: int = 7,
    replay_capacity: bool = False,
    jobs: Optional[int] = None,
) -> Fig7Result:
    """Regenerate Fig 7's four QoE CDF comparisons.

    With ``replay_capacity`` the emulated link replays the 5G run's
    per-window granted-capacity series instead of its mean — the closest
    software analogue of the paper's tc setup; the series only exists once
    the 5G run finishes, so that mode runs the two sessions serially.
    Otherwise the baseline is sized from the cell's *nominal* TB capacity,
    known from the :class:`~repro.phy.params.RanConfig` alone, and both
    sessions execute concurrently through the batch executor.
    """
    config_5g = cross_traffic_scenario(duration_s=duration_s, seed=seed,
                                       record_tbs=False)
    if replay_capacity:
        result_5g = run_session(config_5g)
        # Size the wired baseline from the 5G run's granted TB capacity, as
        # the paper does ("calculated from the physical transport block
        # sizes").
        assert result_5g.ran is not None
        granted = result_5g.ran.mean_granted_kbps()
        nominal = result_5g.ran.nominal_ul_capacity_kbps()
        rate_kbps = granted if granted > 0 else nominal
        config_emu = emulated_scenario(
            duration_s=duration_s, seed=seed, rate_kbps=rate_kbps
        )
        window = result_5g.ran.config.capacity_window_us
        config_emu.emulated_capacity_series = [
            (w.start_us, max(w.granted_kbps(window), 500.0))
            for w in result_5g.ran.capacity_series()
        ]
        result_emu = run_session(config_emu)
        return Fig7Result(
            qoe_5g=result_5g.qoe(),
            qoe_emulated=result_emu.qoe(),
            emulated_rate_kbps=rate_kbps,
        )

    rate_kbps = nominal_ul_capacity_kbps(config_5g.ran)
    config_emu = emulated_scenario(
        duration_s=duration_s, seed=seed, rate_kbps=rate_kbps
    )
    runs = run_batch(
        [RunSpec("5g", config_5g), RunSpec("emulated", config_emu)],
        collect=collect_qoe,
        jobs=jobs,
        cache=experiment_cache(),
    )
    return Fig7Result(
        qoe_5g=runs[0].value,
        qoe_emulated=runs[1].value,
        emulated_rate_kbps=rate_kbps,
    )
