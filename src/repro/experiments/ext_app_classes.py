"""Extension — diverse application classes over the same RAN (§5.1).

The paper: "there are more and more diverse applications that exhibit
various traffic patterns (e.g., short video, video on demand, web browsing,
interactive applications) ... All underlying networks introduce different
artifacts that are of varying importance to the different classes of
applications."

This experiment sends four canonical uplink traffic patterns through the
same 5G cell and uses Athena to show *which* RAN mechanism dominates each
class's latency:

* **video conferencing** — periodic multi-packet frames → delay spread;
* **cloud gaming input** — high-rate tiny packets → TDD alignment;
* **web browsing** — sporadic small bursts → the SR/BSR grant loop
  (the ~10 ms first-packet penalty, cf. Tan et al. [38]);
* **short-video upload** — large periodic bursts → grant queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..core.correlator import correlate_packets_to_frames
from ..core.report import format_table
from ..net.topology import CallTopology, RanUplink
from ..phy.channel import FixedChannel
from ..phy.params import RanConfig
from ..phy.ran import RanSimulator
from ..sim.engine import Simulator
from ..sim.random import RngStreams
from ..sim.units import TimeUs, ms, seconds, us_to_ms
from ..trace.schema import CapturePoint, MediaKind, PacketRecord, new_packet_id


@dataclass
class AppClassStats:
    """Athena's view of one application class's uplink experience."""

    name: str
    owd_p50_ms: float
    owd_p95_ms: float
    burst_spread_p50_ms: float
    alignment_share: float  # fraction of RAN delay from TDD alignment
    queueing_share: float  # ... from grant wait / backlog
    spread_share: float  # ... from multi-TB segmentation
    harq_share: float


@dataclass
class ExtAppClassesResult:
    """The per-class comparison table."""

    classes: List[AppClassStats] = field(default_factory=list)

    def by_name(self) -> Dict[str, AppClassStats]:
        """Index by application class name."""
        return {c.name: c for c in self.classes}

    def summary(self) -> str:
        """Bench-ready table."""
        rows = [
            [c.name, c.owd_p50_ms, c.owd_p95_ms, c.burst_spread_p50_ms,
             f"{100 * c.alignment_share:.0f}%",
             f"{100 * c.queueing_share:.0f}%",
             f"{100 * c.spread_share:.0f}%",
             f"{100 * c.harq_share:.0f}%"]
            for c in self.classes
        ]
        return format_table(
            ["app class", "OWD p50 (ms)", "p95", "burst spread p50 (ms)",
             "align", "grant/queue", "segment", "HARQ"],
            rows,
        )


class _PatternSender:
    """Drives one synthetic uplink traffic pattern into the topology."""

    def __init__(self, sim: Simulator, topology: CallTopology, rng) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng

    def _send(self, size_bytes: int, flow: str) -> None:
        packet = PacketRecord(
            packet_id=new_packet_id(), flow_id=flow, kind=MediaKind.VIDEO,
            size_bytes=size_bytes,
        )
        self.topology.send_media(packet)

    def _send_burst(self, total_bytes: int, flow: str,
                    mtu: int = 1_148, spacing_us: int = 30) -> None:
        remaining = total_bytes
        i = 0
        while remaining > 0:
            size = min(mtu, remaining)
            remaining -= size
            self.sim.call_later(i * spacing_us,
                                lambda s=size: self._send(s, flow))
            i += 1

    # The four patterns -------------------------------------------------
    def start_vca(self) -> None:
        """28 fps frames of ~4 KB (the paper's workload)."""
        self.sim.every(35_714, lambda: self._send_burst(
            max(800, int(self.rng.normal(4_000, 500))), "vca"))

    def start_cloud_gaming(self) -> None:
        """125 Hz input/state packets of ~100 B."""
        self.sim.every(8_000, lambda: self._send(100, "gaming"))

    def start_web_browsing(self) -> None:
        """Sporadic request bursts: 2-6 packets of ~600 B every few seconds."""

        def click() -> None:
            n = int(self.rng.integers(2, 7))
            for i in range(n):
                self.sim.call_later(i * 200, lambda: self._send(600, "web"))
            self.sim.call_later(
                int(self.rng.exponential(seconds(3.0))) + ms(500.0), click
            )

        self.sim.call_later(ms(100.0), click)

    def start_short_video_upload(self) -> None:
        """A ~300 KB clip upload every 8 s, paced at 6 Mbps."""

        def upload() -> None:
            total = 300_000
            mtu = 1_400
            pace_us = int(mtu * 8 / 6_000_000 * 1e6)  # 6 Mbps pacing
            for i in range(total // mtu):
                self.sim.call_later(i * pace_us,
                                    lambda: self._send(mtu, "upload"))

        self.sim.every(seconds(8.0), upload, start_us=ms(500.0))


def _run_pattern(name: str, starter: str, duration_s: float, seed: int
                 ) -> AppClassStats:
    sim = Simulator()
    rngs = RngStreams(seed)
    config = RanConfig()
    ran = RanSimulator(sim, config, rngs)
    ran.add_ue(1, channel=FixedChannel(config.default_mcs, config.base_bler))
    topology = CallTopology(sim, RanUplink(ran, 1), rng=rngs.stream("path"))
    sender = _PatternSender(sim, topology, rngs.stream("pattern"))
    getattr(sender, starter)()
    sim.run_until(seconds(duration_s))

    trace = topology.trace
    owds = []
    shares = {"align": 0.0, "queue": 0.0, "spread": 0.0, "harq": 0.0}
    for p in trace.packets:
        d = p.one_way_delay_us(CapturePoint.SENDER, CapturePoint.CORE)
        if d is None or p.ran is None:
            continue
        owds.append(us_to_ms(d))
        shares["align"] += p.ran.sched_wait_us
        shares["queue"] += p.ran.queue_wait_us
        shares["spread"] += p.ran.spread_wait_us
        shares["harq"] += p.ran.harq_delay_us
    total_ran = sum(shares.values()) or 1.0

    clusters = correlate_packets_to_frames(trace, use_rtp=False)
    index = trace.packet_index()
    spreads = []
    for cluster in clusters.values():
        cores = [
            t for pid in cluster.packet_ids
            if (t := index[pid].capture_at(CapturePoint.CORE)) is not None
        ]
        if cores:
            spreads.append(us_to_ms(max(cores) - min(cores)))

    return AppClassStats(
        name=name,
        owd_p50_ms=float(np.median(owds)) if owds else float("nan"),
        owd_p95_ms=float(np.percentile(owds, 95)) if owds else float("nan"),
        burst_spread_p50_ms=float(np.median(spreads)) if spreads else float("nan"),
        alignment_share=shares["align"] / total_ran,
        queueing_share=shares["queue"] / total_ran,
        spread_share=shares["spread"] / total_ran,
        harq_share=shares["harq"] / total_ran,
    )


def run_ext_app_classes(
    duration_s: float = 30.0, seed: int = 7
) -> ExtAppClassesResult:
    """Compare how the RAN's artifacts hit four application classes."""
    patterns = [
        ("video conferencing", "start_vca"),
        ("cloud gaming input", "start_cloud_gaming"),
        ("web browsing", "start_web_browsing"),
        ("short-video upload", "start_short_video_upload"),
    ]
    result = ExtAppClassesResult()
    for name, starter in patterns:
        result.classes.append(_run_pattern(name, starter, duration_s, seed))
    return result
