"""Fig 8 — How Zoom adapts: SVC layer set, frame rate, and delay.

Zoom reacts to very high absolute delay (>1 s) by switching the SVC layer
set and "more permanently" reducing the frame rate to 14 fps; under high
jitter it transiently skips frames down to rates around 20 fps.  We drive
the call through a saturation episode and report the per-layer bitrate,
frame-rate, and delay time series, plus the observed mode transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..app.session import run_session
from ..core.api import AdaptationSeries, AthenaSession
from ..core.report import format_table
from ..media.svc import FpsMode
from ..sim.units import seconds, us_to_sec
from .common import saturating_scenario


@dataclass
class Fig8Result:
    """Fig 8's stacked time series and the adaptation transitions."""

    series: AdaptationSeries
    mode_transitions: List[Tuple[float, FpsMode]]  # (time s, new mode)

    def modes_seen(self) -> List[FpsMode]:
        """Distinct operating modes in order of first appearance."""
        seen: List[FpsMode] = []
        for _, mode in self.mode_transitions:
            if mode not in seen:
                seen.append(mode)
        return seen

    def fps_during(self, start_s: float, end_s: float) -> float:
        """Median rendered fps within a time window."""
        values = [
            fps
            for t, fps in zip(self.series.window_s, self.series.frame_rate_fps)
            if start_s <= t < end_s
        ]
        return float(np.median(values)) if values else float("nan")

    def peak_delay_ms(self) -> float:
        """Highest per-window p95 one-way delay."""
        vals = [v for v in self.series.delay_ms_p95 if v == v]
        return max(vals) if vals else float("nan")

    def summary(self) -> str:
        """Bench-ready report: transitions and per-phase frame rates."""
        rows = [[f"{t:.1f}", mode.value] for t, mode in self.mode_transitions]
        table = format_table(["time (s)", "mode"], rows)
        duration_s = self.series.window_s[-1] if self.series.window_s else 0.0
        phases = [
            ("pre-overload", 0.0, duration_s / 3),
            ("overload", duration_s / 3, 2 * duration_s / 3),
            ("recovery", 2 * duration_s / 3, duration_s + 1),
        ]
        phase_rows = [
            [name, self.fps_during(a, b)] for name, a, b in phases
        ]
        return (
            f"mode transitions:\n{table}\n"
            f"peak p95 delay: {self.peak_delay_ms():.0f} ms\n"
            + format_table(["phase", "median fps"], phase_rows)
        )


def run_fig8(duration_s: float = 90.0, seed: int = 7) -> Fig8Result:
    """Regenerate Fig 8's adaptation time series.

    The middle third combines heavy cross traffic with a deep fade of the
    monitored UE's channel (mobility), under which its uplink queue grows
    past one second — the condition that flips Zoom into the persistent
    14 fps SVC layer set.
    """
    config = saturating_scenario(duration_s=duration_s, seed=seed,
                                 record_tbs=False)
    third = seconds(duration_s / 3)
    config.channel_phases = [
        (0, 20, 0.08),  # healthy: 64QAM, nominal BLER
        (third, 2, 0.45),  # deep fade: QPSK, heavy retransmissions
        (2 * third, 20, 0.08),  # recovered
    ]
    result = run_session(config)
    athena = AthenaSession(result.trace)
    series = athena.adaptation_timeseries()
    transitions = [
        (us_to_sec(t), mode) for t, mode in result.sender.mode_series
    ]
    return Fig8Result(series=series, mode_transitions=transitions)
