"""§5.3 — More RAN-aware applications.

Feeds the same idle-cell packet stream to vanilla GCC and to the RAN-aware
variant that subtracts PHY-telemetry delay (scheduling wait, spread, HARQ)
from arrival timestamps before gradient filtering.  The phantom overuse
detections of Fig 10 should largely disappear under masking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cc.base import PacketArrival
from ..core.report import format_table
from ..mitigation.ran_aware_cc import MaskingComparison, compare_masking
from ..trace.schema import CapturePoint
from .common import cached_run_session, idle_cell_scenario


@dataclass
class Sec53Result:
    """Vanilla vs RAN-aware GCC on the same arrivals."""

    comparison: MaskingComparison

    def summary(self) -> str:
        """Bench-ready comparison table."""
        c = self.comparison
        rows = [
            ["samples", c.samples],
            ["overuse (vanilla GCC)", c.vanilla_overuse_count],
            ["overuse (RAN-aware GCC)", c.masked_overuse_count],
            ["overuse fraction (vanilla)", c.vanilla_overuse_fraction],
            ["overuse fraction (masked)", c.masked_overuse_fraction],
            ["improvement factor", c.improvement_factor],
        ]
        return format_table(["quantity", "value"], rows)


def run_sec53(duration_s: float = 60.0, seed: int = 7) -> Sec53Result:
    """Compare GCC with and without PHY-delay masking on an idle cell."""
    config = idle_cell_scenario(duration_s=duration_s, seed=seed,
                                record_tbs=False)
    result = cached_run_session(config)
    arrivals = []
    for packet in result.trace.packets:
        send = packet.capture_at(CapturePoint.SENDER)
        arrival = packet.capture_at(CapturePoint.RECEIVER)
        if send is None or arrival is None:
            continue
        arrivals.append(
            PacketArrival(
                packet_id=packet.packet_id,
                send_us=send,
                arrival_us=arrival,
                size_bytes=packet.size_bytes,
                ran_induced_us=packet.ran.ran_induced_us() if packet.ran else 0,
            )
        )
    arrivals.sort(key=lambda a: a.arrival_us)
    # Per-packet gradients, matching the Fig 10 analysis that motivates
    # the mitigation.
    from ..cc.gcc import GccConfig

    return Sec53Result(
        comparison=compare_masking(arrivals, GccConfig(burst_time_us=0))
    )
