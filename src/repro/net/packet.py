"""Packet construction helpers and protocol overhead accounting."""

from __future__ import annotations

from typing import Optional

from ..trace.ids import IdSpace
from ..trace.schema import MediaKind, PacketRecord, RtpInfo, new_packet_id

# Header overheads in bytes.
IPV4_HEADER = 20
UDP_HEADER = 8
RTP_HEADER = 12
RTP_EXTENSION = 8  # layer id, transport-wide sequence, etc.
RTP_OVERHEAD = IPV4_HEADER + UDP_HEADER + RTP_HEADER + RTP_EXTENSION
ICMP_PACKET_BYTES = 64

VIDEO_SSRC = 0x1111_0001
AUDIO_SSRC = 0x2222_0001

# 90 kHz RTP media clock for video (RFC 3550 convention).
RTP_VIDEO_CLOCK_HZ = 90_000
RTP_AUDIO_CLOCK_HZ = 48_000


def _next_packet_id(ids: Optional[IdSpace]) -> int:
    """Allocate from a call-scoped id space, or the session's current one."""
    return ids.next_packet_id() if ids is not None else new_packet_id()


def make_rtp_packet(
    flow_id: str,
    kind: MediaKind,
    payload_bytes: int,
    ssrc: int,
    seq: int,
    timestamp_ticks: int,
    frame_id: int,
    layer_id: int,
    marker: bool,
    frame_start: bool = False,
    ids: Optional[IdSpace] = None,
) -> PacketRecord:
    """Build one RTP-over-UDP datagram record."""
    if payload_bytes <= 0:
        raise ValueError(f"payload must be positive: {payload_bytes}")
    return PacketRecord(
        packet_id=_next_packet_id(ids),
        flow_id=flow_id,
        kind=kind,
        size_bytes=payload_bytes + RTP_OVERHEAD,
        rtp=RtpInfo(
            ssrc=ssrc,
            seq=seq,
            timestamp=timestamp_ticks,
            frame_id=frame_id,
            layer_id=layer_id,
            marker=marker,
            frame_start=frame_start,
        ),
    )


def make_probe_packet(seq: int, ids: Optional[IdSpace] = None) -> PacketRecord:
    """Build one ICMP echo request record."""
    return PacketRecord(
        packet_id=_next_packet_id(ids),
        flow_id="icmp",
        kind=MediaKind.PROBE,
        size_bytes=ICMP_PACKET_BYTES,
        rtp=None,
    )


def make_feedback_packet(
    payload_bytes: int = 80, ids: Optional[IdSpace] = None
) -> PacketRecord:
    """Build one RTCP feedback datagram record."""
    return PacketRecord(
        packet_id=_next_packet_id(ids),
        flow_id="rtcp",
        kind=MediaKind.FEEDBACK,
        size_bytes=payload_bytes + IPV4_HEADER + UDP_HEADER,
    )
