"""End-to-end call paths: Fig 2's measurement topology in code.

The monitored media direction is::

    sender --(access: 5G RAN uplink | emulated tc link)--> mobile core
           --(WAN)--> SFU (application-layer processing) --(WAN)--> receiver

with packet captures stamped at the sender (tap 1), the core (tap 2), the
SFU (tap 3/3*), and the receiver (tap 4), each on its own host clock.  The
feedback direction (RTCP) runs receiver → core → 5G downlink → sender.
An ICMP prober pings the SFU from the core every 20 ms to isolate the WAN
(orange path in Figs 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol

import numpy as np

from ..core.timesync import HostClock
from ..phy.ran import RanSimulator
from ..sim.engine import Simulator
from ..sim.units import TimeUs, ms
from ..trace.bus import InMemorySink, TraceSink
from ..trace.ids import IdSpace
from ..trace.schema import CapturePoint, MediaKind, PacketRecord, ProbeRecord, Trace
from .links import Arrival, DelayLink, EmulatedLink, ProcessingNode
from .packet import make_probe_packet

MediaDelivery = Callable[[PacketRecord, TimeUs], None]


class AccessUplink(Protocol):
    """The access network carrying media from the sender to the mobile core."""

    def send(self, packet: PacketRecord, on_core_arrival: Arrival) -> None:
        """Carry one packet; ``on_core_arrival`` fires at the core tap."""


class RanUplink:
    """5G access: packets go through the RAN simulator's uplink."""

    def __init__(self, ran: RanSimulator, ue_id: int) -> None:
        self._ran = ran
        self.ue_id = ue_id
        self._on_core: Optional[Arrival] = None
        ran.set_uplink_sink(ue_id, self._deliver)

    def send(self, packet: PacketRecord, on_core_arrival: Arrival) -> None:
        self._on_core = on_core_arrival
        self._ran.send_uplink(self.ue_id, packet)

    def _deliver(self, packet: PacketRecord, arrival_us: TimeUs) -> None:
        if self._on_core is not None:
            self._on_core(packet, arrival_us)


class EmulatedUplink:
    """Wired baseline access: tc-style shaper with fixed latency (Fig 7)."""

    def __init__(self, link: EmulatedLink) -> None:
        self.link = link

    def send(self, packet: PacketRecord, on_core_arrival: Arrival) -> None:
        self.link.send(packet, on_core_arrival)


@dataclass
class PathConfig:
    """Delay characteristics of everything beyond the access network."""

    wan_core_to_sfu_us: TimeUs = ms(10.0)
    wan_sfu_to_receiver_us: TimeUs = ms(10.0)
    wan_jitter_std_us: float = 250.0
    sfu_base_us: TimeUs = 800
    sfu_jitter_std_us: float = 300.0
    sfu_tail_prob: float = 0.04
    sfu_tail_mean_us: float = 6_000.0
    feedback_wan_us: TimeUs = ms(20.0)
    feedback_jitter_std_us: float = 250.0
    icmp_interval_us: TimeUs = ms(20.0)
    # Clock offsets of each capture host relative to true time (NTP residuals).
    clock_offsets_us: dict = field(default_factory=dict)


class CallTopology:
    """One call's media direction plus its feedback channel and prober.

    In a multi-call cell each call owns one topology; ``call_id`` tags every
    record the topology emits (packets at the sender tap, probes, sync
    exchanges) so the trace bus can scope per-call views, ``ids`` draws the
    topology's own packets (probes) from the call's id space, and ``sfu``
    lets N calls share one :class:`SfuFanout` processing node instead of
    each building a private one.
    """

    def __init__(
        self,
        sim: Simulator,
        uplink: AccessUplink,
        rng: np.random.Generator,
        config: Optional[PathConfig] = None,
        trace: Optional[Trace] = None,
        ran_for_feedback: Optional[RanSimulator] = None,
        feedback_ue_id: Optional[int] = None,
        record_packets: bool = True,
        sink: Optional[TraceSink] = None,
        call_id: Optional[int] = None,
        ids: Optional[IdSpace] = None,
        sfu: Optional[ProcessingNode] = None,
    ) -> None:
        self.sim = sim
        self.uplink = uplink
        self.config = config or PathConfig()
        if sink is None:
            sink = InMemorySink(trace if trace is not None else Trace())
        self.sink = sink
        # Legacy accessor: the collected Trace when the sink keeps one.
        self.trace = sink.result_trace() or (trace if trace is not None else Trace())
        self.record_packets = record_packets
        self.call_id = call_id
        self.ids = ids
        self._probe_count = 0
        self.media_packets_sent = 0
        self._ran_for_feedback = ran_for_feedback
        self._feedback_ue_id = feedback_ue_id

        offsets = self.config.clock_offsets_us
        self.clocks = {
            point: HostClock(point.value, offsets.get(point.value, 0))
            for point in CapturePoint
        }

        cfg = self.config
        self._wan_up = DelayLink(
            sim, cfg.wan_core_to_sfu_us, cfg.wan_jitter_std_us, rng=rng
        )
        self._wan_down = DelayLink(
            sim, cfg.wan_sfu_to_receiver_us, cfg.wan_jitter_std_us, rng=rng
        )
        self._sfu = sfu if sfu is not None else ProcessingNode(
            sim,
            rng,
            base_us=cfg.sfu_base_us,
            jitter_std_us=cfg.sfu_jitter_std_us,
            tail_prob=cfg.sfu_tail_prob,
            tail_mean_us=cfg.sfu_tail_mean_us,
        )
        self._feedback_wan = DelayLink(
            sim, cfg.feedback_wan_us, cfg.feedback_jitter_std_us, rng=rng
        )
        # Dedicated probe links share the WAN's characteristics but skip the
        # SFU's application-layer processing — that is the point of Fig 3's
        # comparison between ICMP and RTP.
        self._probe_out = DelayLink(
            sim, cfg.wan_core_to_sfu_us, cfg.wan_jitter_std_us, rng=rng
        )
        self._probe_back = DelayLink(
            sim, cfg.wan_core_to_sfu_us, cfg.wan_jitter_std_us, rng=rng
        )

        self.on_media_arrival: Optional[MediaDelivery] = None
        self.on_feedback_arrival: Optional[MediaDelivery] = None
        # Observers of outgoing media (e.g. the §5.2 traffic-pattern learner).
        self.media_send_listeners: list = []

    # ------------------------------------------------------------------
    # Media direction (monitored)
    # ------------------------------------------------------------------
    def send_media(self, packet: PacketRecord) -> None:
        """Inject a media packet at the sender (tap 1)."""
        if self.call_id is not None:
            packet.call_id = self.call_id
        self.media_packets_sent += 1
        self._stamp(packet, CapturePoint.SENDER)
        if self.record_packets and packet.kind in (MediaKind.VIDEO, MediaKind.AUDIO):
            # Packets keep mutating (capture stamps, RAN telemetry) until the
            # receiver tap or a drop; finalization follows at that point.
            self.sink.emit("packet", packet, final=False)
        for listener in self.media_send_listeners:
            listener(packet, self.sim.now)
        self.uplink.send(packet, self._on_core)
        if packet.dropped:
            # Synchronous drop in the access shaper (queue overflow): the
            # record has reached its terminal state already.
            self.sink.finalize(packet)

    def _on_core(self, packet: PacketRecord, _arrival: TimeUs) -> None:
        self._stamp(packet, CapturePoint.CORE)
        self._wan_up.send(packet, self._on_sfu)

    def _on_sfu(self, packet: PacketRecord, _arrival: TimeUs) -> None:
        self._stamp(packet, CapturePoint.SFU)
        self._sfu.process(packet, self._after_sfu)

    def _after_sfu(self, packet: PacketRecord, _departure: TimeUs) -> None:
        self._wan_down.send(packet, self._on_receiver)

    def _on_receiver(self, packet: PacketRecord, arrival: TimeUs) -> None:
        self._stamp(packet, CapturePoint.RECEIVER)
        # Finalize before app delivery: a live AnalysisTap on the sink then
        # diagnoses the packet before the receiver's estimator can query the
        # LiveDiagnosis feed about it.  (Same sim instant; trace-identical.)
        self.sink.finalize(packet)
        if self.on_media_arrival is not None:
            self.on_media_arrival(packet, arrival)

    # ------------------------------------------------------------------
    # Feedback direction
    # ------------------------------------------------------------------
    def send_feedback(self, packet: PacketRecord) -> None:
        """Carry an RTCP packet from the receiver back to the sender."""
        self._feedback_wan.send(packet, self._feedback_at_core)

    def _feedback_at_core(self, packet: PacketRecord, arrival: TimeUs) -> None:
        if self._ran_for_feedback is not None and self._feedback_ue_id is not None:
            self._ran_for_feedback.send_downlink(
                self._feedback_ue_id, packet, self._feedback_at_sender
            )
        else:
            # Wired baseline: symmetric fixed latency on the return path.
            self.sim.call_later(
                ms(15.0), lambda: self._feedback_at_sender(packet, self.sim.now)
            )

    def _feedback_at_sender(self, packet: PacketRecord, arrival: TimeUs) -> None:
        if self.on_feedback_arrival is not None:
            self.on_feedback_arrival(packet, arrival)

    # ------------------------------------------------------------------
    # ICMP prober (core -> SFU -> core, every 20 ms)
    # ------------------------------------------------------------------
    def start_prober(self) -> None:
        """Start pinging the SFU from the core at the configured interval."""
        self.sim.every(self.config.icmp_interval_us, self._send_probe)

    def _send_probe(self) -> None:
        packet = make_probe_packet(seq=self._probe_count, ids=self.ids)
        self._probe_count += 1
        record = ProbeRecord(
            probe_id=packet.packet_id,
            sent_us=self.clocks[CapturePoint.CORE].timestamp(self.sim.now),
            call_id=self.call_id,
        )
        self.sink.emit("probe", record, final=False)

        def reply(_pkt: PacketRecord, _t: TimeUs) -> None:
            self._probe_back.send(
                _pkt,
                lambda _p, back_t: self._probe_done(record, back_t),
            )

        self._probe_out.send(packet, reply)

    def _probe_done(self, record: ProbeRecord, arrival: TimeUs) -> None:
        record.received_us = self.clocks[CapturePoint.CORE].timestamp(arrival)
        self.sink.finalize(record)

    # ------------------------------------------------------------------
    # NTP-style time synchronization (Athena step 2)
    # ------------------------------------------------------------------
    def start_time_sync(
        self, rng: np.random.Generator, interval_us: TimeUs = ms(1_000.0)
    ) -> None:
        """Run periodic two-way clock exchanges between each capture host
        and the core, recording local timestamps for offline offset
        estimation.  Exchange delays mirror each host's real path to the
        core (the RAN for the sender, the WAN/SFU for the others), including
        occasional congestion spikes — which is why Athena's estimators use
        minimum-RTT filtering."""
        cfg = self.config
        paths = {
            CapturePoint.SENDER: (4_000, 1_000, 0.08, 10_000.0),
            CapturePoint.SFU: (cfg.wan_core_to_sfu_us, 300, 0.02, 5_000.0),
            CapturePoint.RECEIVER: (
                cfg.wan_core_to_sfu_us + cfg.wan_sfu_to_receiver_us + 1_000,
                400,
                0.04,
                6_000.0,
            ),
        }
        for i, (point, params) in enumerate(paths.items()):
            self.sim.every(
                interval_us,
                lambda p=point, pr=params, r=rng: self._sync_exchange(p, pr, r),
                start_us=self.sim.now + (i + 1) * (interval_us // 4),
            )

    def _sync_exchange(self, point: CapturePoint, params, rng) -> None:
        base_us, jitter_us, spike_prob, spike_mean_us = params

        def one_way() -> int:
            delay_us = base_us + abs(rng.normal(0.0, jitter_us))
            if rng.random() < spike_prob:
                delay_us += rng.exponential(spike_mean_us)
            return int(delay_us)

        host_clock = self.clocks[point]
        core_clock = self.clocks[CapturePoint.CORE]
        t_send = self.sim.now
        out = one_way()
        back = one_way()
        proc = 100  # server-side turnaround
        from ..trace.schema import SyncExchangeRecord

        self.sink.emit(
            "sync",
            SyncExchangeRecord(
                host=point.value,
                t1=host_clock.timestamp(t_send),
                t2=core_clock.timestamp(t_send + out),
                t3=core_clock.timestamp(t_send + out + proc),
                t4=host_clock.timestamp(t_send + out + proc + back),
                call_id=self.call_id,
            )
        )

    # ------------------------------------------------------------------
    def _stamp(self, packet: PacketRecord, point: CapturePoint) -> None:
        packet.set_capture(point, self.clocks[point].timestamp(self.sim.now))


class SfuFanout:
    """One SFU host serving N concurrent calls of the cell.

    The fan-out owns the shared application-layer :class:`ProcessingNode`
    (one queueing/tail-latency budget for the whole conference server, fed
    by its own RNG stream) and registers each call's :class:`CallTopology`
    against it, so contention at the SFU is modeled across calls while WAN
    propagation stays per call.  Single-call sessions skip the fan-out and
    keep their private node — construction and RNG draws are unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        config: Optional[PathConfig] = None,
    ) -> None:
        self.sim = sim
        cfg = config or PathConfig()
        self.config = cfg
        self.sfu = ProcessingNode(
            sim,
            rng,
            base_us=cfg.sfu_base_us,
            jitter_std_us=cfg.sfu_jitter_std_us,
            tail_prob=cfg.sfu_tail_prob,
            tail_mean_us=cfg.sfu_tail_mean_us,
        )
        # Registry keyed by call id — the fan-out's whole point is that no
        # lookup ever assumes "the one call".
        self._topologies: Dict[int, CallTopology] = {}

    def attach(self, topology: CallTopology) -> CallTopology:
        """Register one call's topology with the shared SFU."""
        call_id = topology.call_id
        if call_id is None:
            raise ValueError("fan-out topologies must carry a call_id")
        if call_id in self._topologies:
            raise ValueError(f"call {call_id} already attached to the SFU")
        self._topologies[call_id] = topology
        return topology

    def topology_for(self, call_id: int) -> CallTopology:
        """Look up the topology serving one call."""
        return self._topologies[call_id]

    @property
    def call_count(self) -> int:
        """Calls currently fanned out by this SFU."""
        return len(self._topologies)

    def media_packets_sent(self) -> int:
        """Media packets injected across every attached call."""
        return sum(t.media_packets_sent for t in self._topologies.values())
