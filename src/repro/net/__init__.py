"""Network layer: packets, links, SFU, capture taps, call topology."""

from .links import DelayLink, EmulatedLink, ProcessingNode
from .packet import (
    AUDIO_SSRC,
    ICMP_PACKET_BYTES,
    RTP_AUDIO_CLOCK_HZ,
    RTP_OVERHEAD,
    RTP_VIDEO_CLOCK_HZ,
    VIDEO_SSRC,
    make_feedback_packet,
    make_probe_packet,
    make_rtp_packet,
)
from .topology import (
    AccessUplink,
    CallTopology,
    EmulatedUplink,
    PathConfig,
    RanUplink,
)

__all__ = [
    "AUDIO_SSRC",
    "AccessUplink",
    "CallTopology",
    "DelayLink",
    "EmulatedLink",
    "EmulatedUplink",
    "ICMP_PACKET_BYTES",
    "PathConfig",
    "ProcessingNode",
    "RTP_AUDIO_CLOCK_HZ",
    "RTP_OVERHEAD",
    "RTP_VIDEO_CLOCK_HZ",
    "RanUplink",
    "VIDEO_SSRC",
    "make_feedback_packet",
    "make_probe_packet",
    "make_rtp_packet",
]
