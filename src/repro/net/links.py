"""Wired links, WAN segments, and the tc-style emulated bottleneck.

Three conduits:

* :class:`DelayLink` — fixed propagation plus optional small jitter; used
  for the WAN segments, which the paper finds "low and stable" (Fig 3);
* :class:`ProcessingNode` — models middlebox processing time with a heavy
  tail, used for the SFU's application-layer jitter (the secondary jitter
  source of Fig 3);
* :class:`EmulatedLink` — the Fig 7 wired baseline: a token-bucket shaper
  at the cell's granted capacity behind a fixed 15 ms latency, i.e. what
  the authors built with Linux ``tc``.

All conduits preserve FIFO ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.engine import Simulator
from ..sim.units import TimeUs, US_PER_SEC, ms
from ..trace.schema import PacketRecord

Arrival = Callable[[PacketRecord, TimeUs], None]


class DelayLink:
    """Fixed-delay link with optional lognormal jitter and random loss."""

    def __init__(
        self,
        sim: Simulator,
        base_delay_us: TimeUs,
        jitter_std_us: float = 0.0,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base_delay_us < 0:
            raise ValueError("base delay must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        if (jitter_std_us > 0 or loss_rate > 0) and rng is None:
            raise ValueError("rng required when jitter or loss is enabled")
        self._sim = sim
        self.base_delay_us = base_delay_us
        self.jitter_std_us = jitter_std_us
        self.loss_rate = loss_rate
        self._rng = rng
        self._last_arrival: TimeUs = 0
        self.packets_sent = 0
        self.packets_lost = 0

    def send(self, packet: PacketRecord, on_arrival: Arrival) -> None:
        """Carry ``packet`` across the link, preserving FIFO order."""
        self.packets_sent += 1
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.packets_lost += 1
            packet.dropped = True
            return
        delay_us = self.base_delay_us
        if self.jitter_std_us > 0:
            delay_us += abs(self._rng.normal(0.0, self.jitter_std_us))
        arrival = max(self._sim.now + int(delay_us), self._last_arrival)
        self._last_arrival = arrival
        self._sim.at(arrival, lambda: on_arrival(packet, arrival))


class ProcessingNode:
    """Middlebox service time: a small base plus an occasional heavy tail.

    With probability ``tail_prob`` the processing draw comes from an
    exponential with mean ``tail_mean_us`` — modelling the SFU's bursts of
    application-layer processing delay.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        base_us: TimeUs = 800,
        jitter_std_us: float = 300.0,
        tail_prob: float = 0.04,
        tail_mean_us: float = 6_000.0,
    ) -> None:
        self._sim = sim
        self._rng = rng
        self.base_us = base_us
        self.jitter_std_us = jitter_std_us
        self.tail_prob = tail_prob
        self.tail_mean_us = tail_mean_us
        self._last_departure: TimeUs = 0

    def process(self, packet: PacketRecord, on_done: Arrival) -> None:
        """Apply one service-time draw, preserving FIFO order."""
        delay_us = self.base_us + abs(self._rng.normal(0.0, self.jitter_std_us))
        if self._rng.random() < self.tail_prob:
            delay_us += self._rng.exponential(self.tail_mean_us)
        departure = max(self._sim.now + int(delay_us), self._last_departure)
        self._last_departure = departure
        self._sim.at(departure, lambda: on_done(packet, departure))


class EmulatedLink:
    """The paper's tc baseline: rate shaping + fixed latency (Fig 7).

    A FIFO byte queue drained at a configurable rate — either constant or a
    replayed capacity series from a RAN run — followed by a fixed latency.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_kbps: float,
        latency_us: TimeUs = ms(15.0),
        queue_limit_bytes: int = 300_000,
        capacity_series: Optional[Sequence[Tuple[TimeUs, float]]] = None,
    ) -> None:
        if rate_kbps <= 0 and not capacity_series:
            raise ValueError("need a positive rate or a capacity series")
        self._sim = sim
        self.rate_kbps = rate_kbps
        self.latency_us = latency_us
        self.queue_limit_bytes = queue_limit_bytes
        self._series: List[Tuple[TimeUs, float]] = (
            sorted(capacity_series) if capacity_series else []
        )
        self._queue: Deque[Tuple[PacketRecord, Arrival]] = deque()
        self._queued_bytes = 0
        self._busy = False
        self.packets_sent = 0
        self.packets_dropped = 0

    def _rate_at(self, now: TimeUs) -> float:
        if not self._series:
            return self.rate_kbps
        rate_kbps = self._series[0][1]
        for start, kbps in self._series:
            if now >= start:
                rate_kbps = kbps
            else:
                break
        return max(rate_kbps, 1.0)

    def send(self, packet: PacketRecord, on_arrival: Arrival) -> None:
        """Enqueue ``packet`` for shaped transmission (tail-drop on overflow)."""
        if self._queued_bytes + packet.size_bytes > self.queue_limit_bytes:
            self.packets_dropped += 1
            packet.dropped = True
            return
        self._queue.append((packet, on_arrival))
        self._queued_bytes += packet.size_bytes
        self.packets_sent += 1
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, on_arrival = self._queue[0]
        rate_kbps = self._rate_at(self._sim.now)
        tx_time_us = int(packet.size_bytes * 8 / (rate_kbps * 1_000) * US_PER_SEC)

        def finish() -> None:
            self._queue.popleft()
            self._queued_bytes -= packet.size_bytes
            arrival = self._sim.now + self.latency_us
            self._sim.at(arrival, lambda: on_arrival(packet, arrival))
            self._serve_next()

        self._sim.call_later(max(tx_time_us, 1), finish)

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the shaper."""
        return self._queued_bytes
