"""§5 mitigations: app-aware RAN scheduling, RAN-aware CC, L4S signalling."""

from .aware_ran import AppAwareAdvisor, MediaSchedule
from .l4s import EcnMarker, L4sRateController, sojourn_of, summarize_marking
from .ml_predictor import PeriodicityPredictor
from .ran_aware_cc import MaskingComparison, RanAwareGcc, compare_masking

__all__ = [
    "AppAwareAdvisor",
    "EcnMarker",
    "L4sRateController",
    "MaskingComparison",
    "MediaSchedule",
    "PeriodicityPredictor",
    "RanAwareGcc",
    "compare_masking",
    "sojourn_of",
    "summarize_marking",
]
