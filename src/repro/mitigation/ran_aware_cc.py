"""RAN-aware congestion control (§5.3).

The paper proposes two deployment shapes for the same idea — stop the
congestion controller from reacting to RAN-induced delay that carries no
congestion information:

* **telemetry to the application**: the RAN exports a per-packet delay
  decomposition (scheduling wait, delay spread, HARQ inflation) and the
  endpoint subtracts it from arrival timestamps before gradient filtering;
* **masking in the feedback channel**: the network rewrites per-packet
  delay in RTCP transport-wide-CC reports.

Both reduce to adjusting arrival timestamps by the RAN-attributable delay,
which is exactly what :class:`RanAwareGcc` does before delegating to a
standard :class:`~repro.cc.gcc.GccEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cc.base import PacketArrival
from ..cc.gcc import GccConfig, GccEstimator


class RanAwareGcc:
    """GCC with PHY-telemetry delay masking applied to arrivals."""

    def __init__(self, config: Optional[GccConfig] = None) -> None:
        self.inner = GccEstimator(config)
        self.masked_total_us = 0
        self.packets_masked = 0

    def on_packet(self, arrival: PacketArrival) -> None:
        """Feed one packet, subtracting its RAN-induced delay first."""
        if arrival.ran_induced_us > 0:
            self.masked_total_us += arrival.ran_induced_us
            self.packets_masked += 1
        adjusted = PacketArrival(
            packet_id=arrival.packet_id,
            send_us=arrival.send_us,
            arrival_us=arrival.arrival_us - arrival.ran_induced_us,
            size_bytes=arrival.size_bytes,
            ran_induced_us=0,
        )
        self.inner.on_packet(adjusted)

    def estimated_rate_kbps(self) -> float:
        """Current rate estimate of the wrapped estimator."""
        return self.inner.estimated_rate_kbps()

    @property
    def history(self):
        """Diagnostic series of the wrapped estimator."""
        return self.inner.history


@dataclass
class MaskingComparison:
    """Side-by-side result of vanilla vs RAN-aware GCC on one arrival stream."""

    vanilla_overuse_fraction: float
    masked_overuse_fraction: float
    vanilla_overuse_count: int
    masked_overuse_count: int
    samples: int

    @property
    def improvement_factor(self) -> float:
        """How many times fewer overuse detections masking produced."""
        if self.masked_overuse_count == 0:
            return float("inf") if self.vanilla_overuse_count > 0 else 1.0
        return self.vanilla_overuse_count / self.masked_overuse_count


def compare_masking(
    arrivals, config: Optional[GccConfig] = None
) -> MaskingComparison:
    """Run vanilla and RAN-aware GCC over the same arrivals (§5.3 bench)."""
    vanilla = GccEstimator(config)
    masked = RanAwareGcc(config)
    for arrival in arrivals:
        vanilla.on_packet(arrival)
        masked.on_packet(arrival)
    return MaskingComparison(
        vanilla_overuse_fraction=vanilla.history.overuse_fraction(),
        masked_overuse_fraction=masked.history.overuse_fraction(),
        vanilla_overuse_count=vanilla.history.overuse_count(),
        masked_overuse_count=masked.history.overuse_count(),
        samples=len(vanilla.history.samples),
    )
