"""Traffic-pattern learning for grant prediction (§5.2, second option).

Instead of explicit RTP metadata, "the base stations can use machine
learning to learn the current transmission patterns, and predict future
traffic demands to precisely issue grants."  This module implements the
classical online version of that idea: cluster uplink packet arrivals into
bursts, estimate the burst period and phase from the recent burst train,
and keep an EWMA of burst sizes.  The output continuously refreshes a
:class:`~repro.mitigation.aware_ran.MediaSchedule`, so the same advisor
serves both the metadata path and the learned path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..sim.units import TimeUs, ms
from .aware_ran import MediaSchedule


class PeriodicityPredictor:
    """Online burst-period/phase/size estimator for one uplink flow."""

    def __init__(
        self,
        burst_gap_us: TimeUs = 5_000,
        history: int = 32,
        size_alpha: float = 0.2,
        min_observations: int = 4,
    ) -> None:
        self.burst_gap_us = burst_gap_us
        self.history = history
        self.size_alpha = size_alpha
        self.min_observations = min_observations
        self._burst_starts: Deque[TimeUs] = deque(maxlen=history)
        self._burst_sizes: Deque[int] = deque(maxlen=history)
        self._packet_sizes: Deque[int] = deque(maxlen=200)
        self._current_burst_start: Optional[TimeUs] = None
        self._current_burst_bytes = 0
        self._last_packet_us: Optional[TimeUs] = None
        self._size_estimate: float = 0.0
        self.bursts_observed = 0

    # ------------------------------------------------------------------
    def observe(self, time_us: TimeUs, size_bytes: int) -> None:
        """Feed one uplink packet observation (time, size).

        Small packets (audio samples, feedback) are excluded from burst
        clustering: an audio sample landing just before a video frame would
        otherwise pull the learned frame phase early by several
        milliseconds.
        """
        self._packet_sizes.append(size_bytes)
        if size_bytes < self._frame_packet_threshold():
            return
        if (
            self._last_packet_us is None
            or time_us - self._last_packet_us > self.burst_gap_us
        ):
            self._close_burst()
            self._current_burst_start = time_us
            self._current_burst_bytes = 0
        self._current_burst_bytes += size_bytes
        self._last_packet_us = time_us

    def observe_burst(self, start_us: TimeUs, size_bytes: int) -> None:
        """Feed one pre-clustered frame burst (the LiveDiagnosis feed).

        The streaming frame clusterer has already separated video bursts
        from audio and feedback chatter, so the observation lands directly
        in the period/phase train and the size EWMA — no per-packet
        thresholding needed.
        """
        self.bursts_observed += 1
        self._burst_starts.append(start_us)
        self._burst_sizes.append(size_bytes)
        if self._size_estimate == 0.0:
            self._size_estimate = float(size_bytes)
        else:
            self._size_estimate += self.size_alpha * (
                size_bytes - self._size_estimate
            )

    def _frame_packet_threshold(self) -> float:
        sizes = sorted(self._packet_sizes)
        if len(sizes) < 10:
            return 600.0
        return 0.5 * sizes[int(0.9 * (len(sizes) - 1))]

    def _close_burst(self) -> None:
        if self._current_burst_start is None:
            return
        self.bursts_observed += 1
        # Only *large* bursts (video frames) drive the period estimate —
        # interleaved single-packet audio samples would otherwise corrupt
        # both the period and the size EWMA.
        if self._is_frame_burst(self._current_burst_bytes):
            self._burst_starts.append(self._current_burst_start)
            self._burst_sizes.append(self._current_burst_bytes)
            if self._size_estimate == 0.0:
                self._size_estimate = float(self._current_burst_bytes)
            else:
                self._size_estimate += self.size_alpha * (
                    self._current_burst_bytes - self._size_estimate
                )
        self._current_burst_start = None

    def _is_frame_burst(self, size_bytes: int) -> bool:
        if not self._burst_sizes:
            return size_bytes >= 600  # larger than any audio sample
        reference = sorted(self._burst_sizes)[len(self._burst_sizes) // 2]
        return size_bytes >= 0.5 * reference

    # ------------------------------------------------------------------
    def estimate(self) -> Optional[Tuple[TimeUs, TimeUs, int]]:
        """Current (next_burst_us, period_us, size_bytes), or None if unsure."""
        if len(self._burst_starts) < self.min_observations:
            return None
        starts = list(self._burst_starts)
        gaps = [b - a for a, b in zip(starts, starts[1:]) if b - a > 0]
        if not gaps:
            return None
        gaps.sort()
        period_us = gaps[len(gaps) // 2]  # median is robust to skipped frames
        phase = starts[-1]
        next_burst = phase + period_us
        return next_burst, period_us, int(self._size_estimate)

    def refresh_schedule(self, schedule: MediaSchedule, now_us: TimeUs) -> bool:
        """Push the current estimate into a live MediaSchedule.

        Returns True if the schedule was updated.
        """
        est = self.estimate()
        if est is None:
            return False
        next_burst, period, size = est
        schedule.frame_period_us = period
        schedule.frame_size_bytes = max(size, 200)
        schedule.next_frame_us = next_burst
        schedule.advance_to(now_us)
        return True
