"""Application-aware uplink grant scheduling (§5.2).

VCA traffic is highly predictable: a frame roughly every 33 or 66 ms, with
slowly varying sizes (P-frames only).  The paper proposes that the base
station exploit this — either from RTP-extension metadata announced by the
application, or by learning the pattern — and issue one right-sized grant
exactly when a frame is generated and ready for transmission, instead of
trickling it through small proactive grants until a late BSR grant arrives.
The paper estimates this can cut frame-level delay inflation roughly in
half; in our simulator it does better, collapsing the spread to a single
slot for frames that fit one TB.

:class:`AppAwareAdvisor` plugs into the scheduler's advisor hook.  Its
timing/size knowledge comes from a :class:`MediaSchedule` — filled either
directly by the application (metadata path) or by the
:class:`~repro.mitigation.ml_predictor.PeriodicityPredictor` (learning
path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..phy.grants import PendingGrant
from ..phy.params import RanConfig
from ..phy.tdd import TddFrame
from ..sim.units import TimeUs, ms
from ..trace.schema import TbKind


@dataclass
class MediaSchedule:
    """What the RAN knows about one sender's media pattern.

    ``next_frame_us`` and ``frame_period_us`` describe the frame clock;
    ``frame_size_bytes`` is a periodically updated size estimate (the RTP
    metadata of §5.2).  ``audio_period_us``/``audio_size_bytes`` cover the
    audio stream so it does not starve when proactive grants are off.
    """

    next_frame_us: TimeUs
    frame_period_us: TimeUs
    frame_size_bytes: int
    audio_period_us: TimeUs = ms(20.0)
    audio_size_bytes: int = 220

    def advance_to(self, now_us: TimeUs) -> None:
        """Move the frame clock forward past ``now_us``."""
        if self.frame_period_us <= 0:
            raise ValueError("frame period must be positive")
        while self.next_frame_us <= now_us:
            self.next_frame_us += self.frame_period_us


class AppAwareAdvisor:
    """Issues frame-aligned, right-sized grants for one UE."""

    def __init__(
        self,
        config: RanConfig,
        tdd: TddFrame,
        ue_id: int,
        schedule: MediaSchedule,
        headroom: float = 1.25,
        ready_margin_us: TimeUs = 500,
        suppress_proactive_grants: bool = False,
    ) -> None:
        self._config = config
        self._tdd = tdd
        self.ue_id = ue_id
        self.schedule = schedule
        self.headroom = headroom
        self.ready_margin_us = ready_margin_us
        self.suppress_proactive_grants = suppress_proactive_grants
        self._next_audio_grant_us: TimeUs = 0
        self.grants_issued = 0

    # ------------------------------------------------------------------
    # GrantAdvisor interface
    # ------------------------------------------------------------------
    def grants_for_slot(self, slot_us: TimeUs) -> List[PendingGrant]:
        """Grants to serve in this slot: frame-aligned plus audio keep-alive."""
        grants: List[PendingGrant] = []
        frame_grant = self._frame_grant(slot_us)
        if frame_grant is not None:
            grants.append(frame_grant)
        if self.suppress_proactive_grants:
            audio_grant = self._audio_grant(slot_us)
            if audio_grant is not None:
                grants.append(audio_grant)
        return grants

    def suppress_proactive(self, ue_id: int, slot_us: TimeUs) -> bool:
        """Suppress proactive grants for the managed UE when configured."""
        return self.suppress_proactive_grants and ue_id == self.ue_id

    # ------------------------------------------------------------------
    def _frame_grant(self, slot_us: TimeUs) -> Optional[PendingGrant]:
        # A frame generated at t is transmittable at the first UL slot
        # starting after t + processing margin.  Issue the grant for exactly
        # that slot, sized for the current frame-size estimate.
        ready = self.schedule.next_frame_us + self.ready_margin_us
        if slot_us < self._tdd.next_ul_slot_start(ready):
            return None
        self.schedule.advance_to(slot_us)
        size_bits = int(self.schedule.frame_size_bytes * 8 * self.headroom)
        self.grants_issued += 1
        return PendingGrant(
            ue_id=self.ue_id,
            kind=TbKind.REQUESTED,
            size_bits=max(size_bits, 1_000),
            usable_slot_us=slot_us,
            issued_us=slot_us,
        )

    def _audio_grant(self, slot_us: TimeUs) -> Optional[PendingGrant]:
        if slot_us < self._next_audio_grant_us:
            return None
        self._next_audio_grant_us = slot_us + self.schedule.audio_period_us
        size_bits = int(self.schedule.audio_size_bytes * 8 * self.headroom)
        return PendingGrant(
            ue_id=self.ue_id,
            kind=TbKind.REQUESTED,
            size_bits=max(size_bits, 500),
            usable_slot_us=slot_us,
            issued_us=slot_us,
        )


class MultiCallAdvisor:
    """Arbitrates §5.2 grant scheduling across N calls sharing one cell.

    The scheduler exposes a single advisor hook, so a multi-call cell
    composes its per-call :class:`AppAwareAdvisor` instances here: each
    slot's grants are the per-call grants concatenated in call order (the
    scheduler's PRB budget arbitrates when a slot cannot fit everyone, so
    earlier calls take priority within a slot), and proactive suppression
    is routed to the advisor managing the asking UE.
    """

    def __init__(self, advisors: Sequence[AppAwareAdvisor]) -> None:
        if not advisors:
            raise ValueError("MultiCallAdvisor needs at least one advisor")
        self.advisors: List[AppAwareAdvisor] = list(advisors)
        self._by_ue: Dict[int, AppAwareAdvisor] = {}
        for advisor in self.advisors:
            if advisor.ue_id in self._by_ue:
                raise ValueError(f"duplicate advisor for UE {advisor.ue_id}")
            self._by_ue[advisor.ue_id] = advisor

    # ------------------------------------------------------------------
    # GrantAdvisor interface
    # ------------------------------------------------------------------
    def grants_for_slot(self, slot_us: TimeUs) -> List[PendingGrant]:
        """Every call's grants for this slot, concatenated in call order."""
        grants: List[PendingGrant] = []
        for advisor in self.advisors:
            grants.extend(advisor.grants_for_slot(slot_us))
        return grants

    def suppress_proactive(self, ue_id: int, slot_us: TimeUs) -> bool:
        """Defer to the advisor managing ``ue_id`` (never suppress others)."""
        advisor = self._by_ue.get(ue_id)
        if advisor is None:
            return False
        return advisor.suppress_proactive(ue_id, slot_us)

    @property
    def grants_issued(self) -> int:
        """Total §5.2 grants issued across every managed call."""
        return sum(advisor.grants_issued for advisor in self.advisors)
