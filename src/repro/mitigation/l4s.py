"""L4S-style explicit congestion signalling (§5.3, last paragraph).

The paper points to L4S (RFC 9330) as an attractive protocol for carrying
an accelerate/brake signal from the access network to the sender, with the
open question of how the signal should behave under *predictable* RAN
artifacts (scheduling spread) versus *unpredictable* loss-driven HARQ
spikes.  We implement the two halves:

* :class:`EcnMarker` — a step-threshold CE marker on queue sojourn time
  (the L4S dual-queue style marker), with an option to ignore sojourn that
  PHY telemetry attributes to scheduling/HARQ rather than to queue build-up;
* :class:`L4sRateController` — a DCTCP/Prague-style sender that maintains
  an EWMA of the marked fraction and applies a proportional multiplicative
  decrease, with additive increase otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import TimeUs, ms, us_to_ms
from ..trace.schema import PacketRecord


@dataclass
class EcnMarker:
    """Marks packets whose queue sojourn exceeds a step threshold.

    With ``exclude_ran_artifacts`` the marker answers the paper's closing
    question: the *predictable* RAN components — TDD alignment, frame delay
    spread, HARQ rounds, and up to one BSR scheduling delay of grant wait —
    are subtracted before the threshold comparison, so only queue build-up
    that persists beyond the grant loop (genuine capacity shortage) brakes
    the sender.
    """

    threshold_us: TimeUs = ms(5.0)
    exclude_ran_artifacts: bool = False
    bsr_allowance_us: TimeUs = ms(10.0)
    marked: int = 0
    seen: int = 0

    def mark(self, packet: PacketRecord, sojourn_us: TimeUs) -> bool:
        """Decide the CE bit for one packet; returns True if marked."""
        self.seen += 1
        effective = sojourn_us
        if self.exclude_ran_artifacts and packet.ran is not None:
            t = packet.ran
            predictable = (
                t.sched_wait_us
                + t.spread_wait_us
                + t.harq_delay_us
                + min(t.queue_wait_us, self.bsr_allowance_us)
            )
            effective = max(0, sojourn_us - predictable)
        is_marked = effective > self.threshold_us
        if is_marked:
            self.marked += 1
            packet.__dict__["ecn_ce"] = True
        return is_marked

    @property
    def mark_fraction(self) -> float:
        """Fraction of observed packets marked so far."""
        return self.marked / self.seen if self.seen else 0.0


class L4sRateController:
    """Prague-style sender reaction to the CE-mark fraction."""

    def __init__(
        self,
        initial_rate_kbps: float = 600.0,
        min_rate_kbps: float = 50.0,
        max_rate_kbps: float = 2_500.0,
        gain: float = 1.0 / 16.0,  # DCTCP alpha EWMA gain
        additive_kbps_per_update: float = 15.0,
    ) -> None:
        self.rate_kbps = initial_rate_kbps
        self.min_rate_kbps = min_rate_kbps
        self.max_rate_kbps = max_rate_kbps
        self.gain = gain
        self.additive_kbps_per_update = additive_kbps_per_update
        self.alpha = 0.0
        self._window_marked = 0
        self._window_total = 0

    def on_packet_feedback(self, ce_marked: bool) -> None:
        """Accumulate one packet's CE bit from the feedback channel."""
        self._window_total += 1
        if ce_marked:
            self._window_marked += 1

    def update_rate(self) -> float:
        """Close the current observation window and update the rate."""
        if self._window_total > 0:
            fraction = self._window_marked / self._window_total
            self.alpha += self.gain * (fraction - self.alpha)
            self._window_marked = 0
            self._window_total = 0
        if self.alpha > 0.01:
            self.rate_kbps *= 1.0 - self.alpha / 2.0
        else:
            self.rate_kbps += self.additive_kbps_per_update
        self.rate_kbps = min(self.max_rate_kbps, max(self.min_rate_kbps, self.rate_kbps))
        return self.rate_kbps


def sojourn_of(packet: PacketRecord) -> TimeUs:
    """Uplink sojourn (enqueue to delivery) from PHY telemetry, else 0."""
    if packet.ran is None or packet.ran.delivered_us is None:
        return 0
    return packet.ran.delivered_us - packet.ran.enqueue_us


def summarize_marking(markers: dict) -> str:
    """Human-readable comparison of marker variants (bench helper)."""
    lines = []
    for name, marker in markers.items():
        lines.append(
            f"{name}: marked {marker.marked}/{marker.seen} "
            f"({100 * marker.mark_fraction:.1f}%)"
        )
    return "\n".join(lines)
