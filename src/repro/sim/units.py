"""Time and data-size units used throughout the simulator.

All simulation timestamps are integer **microseconds** so that event ordering
and slot arithmetic (e.g. the 2.5 ms TDD uplink period) are exact.  Analytics
code converts to float milliseconds at the edges via :func:`us_to_ms`.
"""

from __future__ import annotations

# Type alias for documentation purposes: a simulation timestamp or duration.
TimeUs = int

US_PER_MS: int = 1_000
US_PER_SEC: int = 1_000_000
MS_PER_SEC: int = 1_000

BITS_PER_BYTE: int = 8


def ms(value: float) -> TimeUs:
    """Convert milliseconds to integer microseconds (rounded to nearest)."""
    return round(value * US_PER_MS)


def seconds(value: float) -> TimeUs:
    """Convert seconds to integer microseconds (rounded to nearest)."""
    return round(value * US_PER_SEC)


def us_to_ms(value: TimeUs) -> float:
    """Convert integer microseconds to float milliseconds."""
    return value / US_PER_MS


def us_to_sec(value: TimeUs) -> float:
    """Convert integer microseconds to float seconds."""
    return value / US_PER_SEC


def kbps_to_bytes_per_us(kbps: float) -> float:
    """Convert kilobits/second to bytes/microsecond."""
    return kbps * 1_000 / BITS_PER_BYTE / US_PER_SEC


def bytes_to_kbits(nbytes: int) -> float:
    """Convert a byte count to kilobits."""
    return nbytes * BITS_PER_BYTE / 1_000


def throughput_kbps(nbytes: int, duration_us: TimeUs) -> float:
    """Average throughput in kbps of ``nbytes`` delivered over ``duration_us``."""
    if duration_us <= 0:
        raise ValueError(f"duration must be positive, got {duration_us}")
    return nbytes * BITS_PER_BYTE / (duration_us / US_PER_SEC) / 1_000
