"""A minimal deterministic discrete-event simulation engine.

The engine is a priority queue of ``(time_us, priority, sequence, handle,
callback)`` entries.  Ties in time are broken first by ``priority`` (lower
fires first; almost everything uses the default 0) and then by insertion
order, which makes runs fully deterministic for a given seed.  Components
schedule callbacks either at an absolute time (:meth:`Simulator.at`) or
after a delay (:meth:`Simulator.call_later`).

Priorities exist for one reason: a component that *elides* events (the RAN
slot loop skipping idle slots) must be able to re-insert an event later and
still fire in the same position among same-timestamp events as the
non-eliding reference path.  Insertion order cannot provide that — the
re-inserted event would have a fresh sequence number — so such components
run at a reserved negative priority instead.

Recurring activities (TDD slot clocks, frame-capture clocks, RTCP timers)
use :meth:`Simulator.every`, which returns a handle that can be cancelled.
Recurrence is handled by the run loop itself re-inserting a slotted
:class:`EventHandle` — there is no per-tick closure allocation.

Cancellation is lazy (entries stay in the heap and are skipped when
popped), but the engine keeps a live-event counter so
:meth:`Simulator.pending_events` reports the true queue depth, and the heap
self-compacts when cancelled entries outnumber live ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from .units import TimeUs

Callback = Callable[[], None]

#: Heap entries below this many dead records never trigger compaction.
_COMPACT_FLOOR = 64


class EventHandle:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  This keeps scheduling O(log n) with no heap surgery; the
    simulator's live counter and compaction keep the bookkeeping honest.
    """

    __slots__ = ("cancelled", "_sim", "_queued")

    #: Recurrence period; 0 on one-shot events.  Instances of
    #: :class:`_RecurringEvent` shadow this with their real period.
    period_us: TimeUs = 0

    def __init__(self) -> None:
        self.cancelled = False
        self._sim: Optional["Simulator"] = None
        self._queued = False

    def cancel(self) -> None:
        """Prevent the event (and, for recurring events, all repeats) from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queued and self._sim is not None:
            self._sim._note_cancelled()


class _RecurringEvent(EventHandle):
    """Slotted recurring event: the run loop re-inserts it each period.

    Replaces the historical ``fire_and_reschedule`` closure pair — one
    object for the event's whole lifetime instead of two closures per tick.
    """

    __slots__ = ("period_us",)

    def __init__(self, period_us: TimeUs) -> None:
        super().__init__()
        self.period_us = period_us


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator with microsecond resolution."""

    def __init__(self) -> None:
        self._now: TimeUs = 0
        self._seq = itertools.count()
        self._queue: List[
            Tuple[TimeUs, int, int, EventHandle, Callback]
        ] = []
        self._live = 0  # queued entries whose handle is not cancelled
        self._running = False

    @property
    def now(self) -> TimeUs:
        """Current simulation time in microseconds."""
        return self._now

    def at(
        self,
        time_us: TimeUs,
        callback: Callback,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time.

        ``priority`` orders same-timestamp events (lower fires first) ahead
        of insertion order; leave it at 0 unless you are re-creating an
        elided event stream that must keep its position.
        """
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule at {time_us} us; current time is {self._now} us"
            )
        handle = EventHandle()
        self._push(time_us, priority, handle, callback)
        return handle

    def call_later(self, delay_us: TimeUs, callback: Callback) -> EventHandle:
        """Schedule ``callback`` after ``delay_us`` microseconds."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        return self.at(self._now + delay_us, callback)

    def every(
        self,
        period_us: TimeUs,
        callback: Callback,
        start_us: Optional[TimeUs] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to run every ``period_us``, starting at ``start_us``.

        Returns a single handle; cancelling it stops all future repeats.
        """
        if period_us <= 0:
            raise SimulationError(f"period must be positive: {period_us}")
        first = self._now if start_us is None else start_us
        if first < self._now:
            raise SimulationError(
                f"cannot schedule at {first} us; current time is {self._now} us"
            )
        handle = _RecurringEvent(period_us)
        self._push(first, 0, handle, callback)
        return handle

    # ------------------------------------------------------------------
    # Heap internals
    # ------------------------------------------------------------------
    def _push(
        self,
        time_us: TimeUs,
        priority: int,
        handle: EventHandle,
        callback: Callback,
    ) -> None:
        handle._sim = self
        handle._queued = True
        self._live += 1
        heapq.heappush(
            self._queue, (time_us, priority, next(self._seq), handle, callback)
        )

    def _note_cancelled(self) -> None:
        """A queued entry's handle was cancelled; keep the live count true."""
        self._live -= 1
        dead = len(self._queue) - self._live
        if dead > _COMPACT_FLOOR and dead > len(self._queue) // 2:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries in place and restore the heap invariant.

        In-place (slice assignment) so the run loop's local alias to the
        queue list stays valid if a callback triggers compaction mid-run.
        """
        self._queue[:] = [e for e in self._queue if not e[3].cancelled]
        heapq.heapify(self._queue)

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------
    def run_until(self, end_us: TimeUs) -> None:
        """Run events with timestamps <= ``end_us``; afterwards ``now == end_us``."""
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        try:
            while queue and queue[0][0] <= end_us:
                time_us, priority, _seq, handle, callback = pop(queue)
                if handle.cancelled:
                    continue
                handle._queued = False
                self._live -= 1
                self._now = time_us
                callback()
                period_us = handle.period_us
                if period_us and not handle.cancelled:
                    handle._queued = True
                    self._live += 1
                    push(
                        queue,
                        (time_us + period_us, priority, next(seq), handle, callback),
                    )
            self._now = max(self._now, end_us)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("run called re-entrantly")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        try:
            while queue:
                time_us, priority, _seq, handle, callback = pop(queue)
                if handle.cancelled:
                    continue
                handle._queued = False
                self._live -= 1
                self._now = time_us
                callback()
                period_us = handle.period_us
                if period_us and not handle.cancelled:
                    handle._queued = True
                    self._live += 1
                    push(
                        queue,
                        (time_us + period_us, priority, next(seq), handle, callback),
                    )
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of live (not cancelled) queued events."""
        return self._live
