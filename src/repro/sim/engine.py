"""A minimal deterministic discrete-event simulation engine.

The engine is a priority queue of ``(time_us, sequence, callback)`` entries.
Ties in time are broken by insertion order, which makes runs fully
deterministic for a given seed.  Components schedule callbacks either at an
absolute time (:meth:`Simulator.at`) or after a delay (:meth:`Simulator.call_later`).

Recurring activities (TDD slot clocks, frame-capture clocks, RTCP timers)
use :meth:`Simulator.every`, which returns a handle that can be cancelled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from .units import TimeUs

Callback = Callable[[], None]


class EventHandle:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  This keeps scheduling O(log n) with no heap surgery.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event (and, for recurring events, all repeats) from firing."""
        self.cancelled = True


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator with microsecond resolution."""

    def __init__(self) -> None:
        self._now: TimeUs = 0
        self._seq = itertools.count()
        self._queue: List[Tuple[TimeUs, int, EventHandle, Callback]] = []
        self._running = False

    @property
    def now(self) -> TimeUs:
        """Current simulation time in microseconds."""
        return self._now

    def at(self, time_us: TimeUs, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time_us < self._now:
            raise SimulationError(
                f"cannot schedule at {time_us} us; current time is {self._now} us"
            )
        handle = EventHandle()
        heapq.heappush(self._queue, (time_us, next(self._seq), handle, callback))
        return handle

    def call_later(self, delay_us: TimeUs, callback: Callback) -> EventHandle:
        """Schedule ``callback`` after ``delay_us`` microseconds."""
        if delay_us < 0:
            raise SimulationError(f"negative delay: {delay_us}")
        return self.at(self._now + delay_us, callback)

    def every(
        self,
        period_us: TimeUs,
        callback: Callback,
        start_us: Optional[TimeUs] = None,
    ) -> EventHandle:
        """Schedule ``callback`` to run every ``period_us``, starting at ``start_us``.

        Returns a single handle; cancelling it stops all future repeats.
        """
        if period_us <= 0:
            raise SimulationError(f"period must be positive: {period_us}")
        first = self._now if start_us is None else start_us
        handle = EventHandle()

        def fire_and_reschedule(when: TimeUs) -> None:
            def fire() -> None:
                if handle.cancelled:
                    return
                callback()
                if not handle.cancelled:
                    fire_and_reschedule(when + period_us)

            heapq.heappush(self._queue, (when, next(self._seq), handle, fire))

        fire_and_reschedule(first)
        return handle

    def run_until(self, end_us: TimeUs) -> None:
        """Run events with timestamps <= ``end_us``; afterwards ``now == end_us``."""
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            while self._queue and self._queue[0][0] <= end_us:
                time_us, _seq, handle, callback = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time_us
                callback()
            self._now = max(self._now, end_us)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("run called re-entrantly")
        self._running = True
        try:
            while self._queue:
                time_us, _seq, handle, callback = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time_us
                callback()
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events; mainly for tests."""
        return len(self._queue)
