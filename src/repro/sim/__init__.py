"""Discrete-event simulation substrate for the Athena reproduction."""

from .engine import EventHandle, SimulationError, Simulator
from .random import RngStreams
from .units import (
    BITS_PER_BYTE,
    MS_PER_SEC,
    US_PER_MS,
    US_PER_SEC,
    TimeUs,
    bytes_to_kbits,
    kbps_to_bytes_per_us,
    ms,
    seconds,
    throughput_kbps,
    us_to_ms,
    us_to_sec,
)

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "RngStreams",
    "TimeUs",
    "BITS_PER_BYTE",
    "MS_PER_SEC",
    "US_PER_MS",
    "US_PER_SEC",
    "bytes_to_kbits",
    "kbps_to_bytes_per_us",
    "ms",
    "seconds",
    "throughput_kbps",
    "us_to_ms",
    "us_to_sec",
]
