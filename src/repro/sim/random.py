"""Named, reproducible random streams.

Each simulator component draws from its own named substream so that adding a
new source of randomness (or reordering calls inside one component) does not
perturb every other component — a standard technique for credible network
simulation experiments.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngStreams:
    """A registry of independent :class:`numpy.random.Generator` substreams.

    Substreams are derived deterministically from ``(master_seed, name)`` so
    the same name always yields the same stream for a given master seed.
    """

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed}")
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the substream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
