"""Telemetry sinks: where simulator components hand their records.

Components used to hold a :class:`~repro.trace.schema.Trace` reference and
append to its unbounded in-memory lists.  A :class:`TraceSink` decouples
record *emission* from record *retention*, the same separation production
telemetry stacks use, so one session assembly supports several back ends:

* :class:`InMemorySink` — the default; reproduces today's :class:`Trace`
  exactly (every record kept, in emission order);
* :class:`StreamingJsonlSink` — writes the tagged JSONL format of
  :mod:`repro.trace.io` incrementally, keeping only still-mutating records
  resident.  Memory stays O(in-flight records), not O(run duration) —
  what a paper-length 20-minute session needs;
* :class:`NullSink` — drops everything (perf benches that only read the
  live counters);
* :class:`FilteredSink` — forwards a subset of channels to another sink.

Channels mirror the record families (and the JSONL ``"type"`` tags):
``packet``, ``tb``, ``grant``, ``frame``, ``probe``, ``sync``.

Mutable records (packets collect capture stamps along the path; frames get
their render accounting at playout; probes their echo) are emitted with
``final=False`` and *finalized* by the component that applies the last
mutation.  Sinks that serialize eagerly hold such records open until
finalized, flushing completed prefixes in emission order so the persisted
order matches the in-memory one.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, IO, Iterable, Optional, Set, Union

from .schema import Trace, record_belongs_to_call

#: Emission channels, in the order families appear in a saved trace.
CHANNELS = ("packet", "tb", "grant", "frame", "probe", "sync")

#: Channel -> Trace attribute holding that family's records.
CHANNEL_FIELDS: Dict[str, str] = {
    "packet": "packets",
    "tb": "transport_blocks",
    "grant": "grants",
    "frame": "frames",
    "probe": "probes",
    "sync": "sync_exchanges",
}


class TraceSink:
    """Receiver of telemetry records emitted by simulator components.

    Subclasses implement :meth:`emit`; the finalization and lifecycle hooks
    default to no-ops so retention-free sinks stay trivial.
    """

    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        """Accept one record on ``channel``.

        ``final=False`` marks a record that will still be mutated by the
        emitter; the matching :meth:`finalize` call (or :meth:`close`)
        signals that it has reached its terminal state.
        """
        raise NotImplementedError

    def finalize(self, record: object) -> None:
        """Signal that an earlier ``final=False`` record stopped mutating.

        Finalizing a record that was never emitted is a harmless no-op, so
        callers need not track whether recording was enabled.
        """

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        """Merge session metadata (seed, scenario, clock offsets...)."""

    def close(self) -> None:
        """Flush any held records and release resources."""

    def result_trace(self) -> Optional[Trace]:
        """The in-memory :class:`Trace` this sink maintains, if any."""
        return None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemorySink(TraceSink):
    """Default sink: collects every record into a :class:`Trace`."""

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        getattr(self.trace, CHANNEL_FIELDS[channel]).append(record)

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        self.trace.metadata.update(metadata)

    def result_trace(self) -> Optional[Trace]:
        return self.trace


class NullSink(TraceSink):
    """Zero-cost record suppression: every record is dropped on emit."""

    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        pass


class FilteredSink(TraceSink):
    """Forward only a subset of the record stream to an inner sink.

    ``FilteredSink(InMemorySink(), channels=("tb", "grant"))`` keeps the PHY
    telemetry while suppressing the (much larger) packet family.  Passing
    ``call_id`` (and the call's ``ue_id`` for the cell-shared PHY families)
    scopes the view to one conference call of a multi-call cell — the
    per-call sink views the session builder exposes, mirroring
    :meth:`repro.trace.schema.Trace.for_call`.
    """

    def __init__(
        self,
        inner: TraceSink,
        channels: Iterable[str] = CHANNELS,
        *,
        call_id: Optional[int] = None,
        ue_id: Optional[int] = None,
    ) -> None:
        unknown = set(channels) - set(CHANNELS)
        if unknown:
            raise ValueError(f"unknown channels: {sorted(unknown)}")
        self.inner = inner
        self.channels: Set[str] = set(channels)
        self.call_id = call_id
        self.ue_id = ue_id

    def _accepts(self, channel: str, record: object) -> bool:
        if channel not in self.channels:
            return False
        if self.call_id is None:
            return True
        return record_belongs_to_call(channel, record, self.call_id, self.ue_id)

    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        if self._accepts(channel, record):
            self.inner.emit(channel, record, final=final)

    def finalize(self, record: object) -> None:
        self.inner.finalize(record)

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        self.inner.set_metadata(metadata)

    def close(self) -> None:
        self.inner.close()

    def result_trace(self) -> Optional[Trace]:
        return self.inner.result_trace()


#: Serialized lines a :class:`StreamingJsonlSink` buffers before issuing
#: one ``write()`` call for the whole batch.
FLUSH_LINES = 256


class StreamingJsonlSink(TraceSink):
    """Stream records to a tagged-JSONL file with bounded resident memory.

    Immutable records (``final=True``) are serialized on emit.  Mutable ones
    are held in per-channel emission-order tables; as finalizations arrive,
    the completed *prefix* of each table is flushed, so the file preserves
    emission order within every family and the resident set stays bounded by
    the number of records still in flight.  :meth:`close` flushes whatever
    never finalized (packets dropped mid-path, frames unrendered at the end
    of the run) and appends the metadata line.

    Serialized lines are batched in a small buffer and handed to the file
    object in one ``write()`` per flush cycle (every :data:`FLUSH_LINES`
    lines and at close), so write-call count grows with flushes, not
    records — ``write_calls`` exposes the count for regression tests.

    Files written here load with :func:`repro.trace.io.load_trace`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        metadata: Optional[Dict[str, object]] = None,
        *,
        flush_lines: int = FLUSH_LINES,
    ) -> None:
        self.path = Path(path)
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self._meta_written = False
        # Per-channel: emission-ordered open records and the finalized set.
        self._open: Dict[str, "OrderedDict[int, object]"] = {
            ch: OrderedDict() for ch in CHANNELS
        }
        self._done: Dict[str, Set[int]] = {ch: set() for ch in CHANNELS}
        self._channel_of: Dict[int, str] = {}
        self._buffer: list = []
        self._flush_lines = max(1, flush_lines)
        self.records_written = 0
        self.write_calls = 0  # write() calls issued: O(flushes), not O(records)
        self.open_record_peak = 0  # high-water mark of resident records

    # ------------------------------------------------------------------
    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        if channel not in CHANNEL_FIELDS:
            raise ValueError(f"unknown channel: {channel!r}")
        if final:
            self._write(channel, record)
            return
        self._open[channel][id(record)] = record
        self._channel_of[id(record)] = channel
        self.open_record_peak = max(self.open_record_peak, len(self._channel_of))

    def finalize(self, record: object) -> None:
        channel = self._channel_of.get(id(record))
        if channel is None:
            return
        self._done[channel].add(id(record))
        self._flush_ready(channel)

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        if self._meta_written:
            raise RuntimeError("metadata already written; set it before records")
        self._metadata.update(metadata)

    def close(self) -> None:
        if self._fh is None:
            return
        for channel in CHANNELS:
            table = self._open[channel]
            while table:
                _, record = table.popitem(last=False)
                self._channel_of.pop(id(record), None)
                self._done[channel].discard(id(record))
                self._write(channel, record)
        self._ensure_meta()
        self._flush_buffer()
        self._fh.close()
        self._fh = None

    def open_record_count(self) -> int:
        """Records currently held resident awaiting finalization."""
        return len(self._channel_of)

    # ------------------------------------------------------------------
    def _flush_ready(self, channel: str) -> None:
        table = self._open[channel]
        done = self._done[channel]
        while table:
            key = next(iter(table))
            if key not in done:
                break
            record = table.pop(key)
            done.discard(key)
            self._channel_of.pop(key, None)
            self._write(channel, record)

    def _ensure_meta(self) -> None:
        if self._meta_written:
            return
        self._meta_written = True
        from .io import to_jsonable

        self._buffer.append(
            json.dumps({"type": "meta", **to_jsonable(self._metadata)}) + "\n"
        )

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        assert self._fh is not None
        self._fh.write("".join(self._buffer))
        self.write_calls += 1
        self._buffer.clear()

    def _write(self, channel: str, record: object) -> None:
        if self._fh is None:
            raise RuntimeError(f"sink for {self.path} is closed")
        self._ensure_meta()
        from .io import to_jsonable

        self._buffer.append(
            json.dumps({"type": channel, **to_jsonable(record)}) + "\n"
        )
        self.records_written += 1
        if len(self._buffer) >= self._flush_lines:
            self._flush_buffer()
