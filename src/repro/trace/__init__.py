"""Trace schema, telemetry sinks, and persistence for Athena experiments."""

from .bus import (
    CHANNELS,
    FilteredSink,
    InMemorySink,
    NullSink,
    StreamingJsonlSink,
    TraceSink,
)
from .columnar import (
    ColumnarSink,
    ColumnarTrace,
    columnar_trace_from_trace,
    trace_from_payload,
)
from .ids import IdSpace, use_id_space
from .io import (
    TraceFormatError,
    export_csv,
    iter_trace_records,
    load_trace,
    save_trace,
    write_trace_jsonl,
)
from .schema import (
    CapturePoint,
    FrameRecord,
    GrantRecord,
    MediaKind,
    PacketRecord,
    ProbeRecord,
    RanPacketTelemetry,
    RtpInfo,
    SyncExchangeRecord,
    TbKind,
    Trace,
    TransportBlockRecord,
)

__all__ = [
    "CHANNELS",
    "CapturePoint",
    "ColumnarSink",
    "ColumnarTrace",
    "FilteredSink",
    "FrameRecord",
    "GrantRecord",
    "IdSpace",
    "InMemorySink",
    "MediaKind",
    "NullSink",
    "PacketRecord",
    "ProbeRecord",
    "RanPacketTelemetry",
    "RtpInfo",
    "StreamingJsonlSink",
    "SyncExchangeRecord",
    "TbKind",
    "Trace",
    "TraceSink",
    "TransportBlockRecord",
    "TraceFormatError",
    "columnar_trace_from_trace",
    "export_csv",
    "iter_trace_records",
    "load_trace",
    "save_trace",
    "trace_from_payload",
    "use_id_space",
    "write_trace_jsonl",
]
