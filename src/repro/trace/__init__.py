"""Trace schema, telemetry sinks, and persistence for Athena experiments."""

from .bus import (
    CHANNELS,
    FilteredSink,
    InMemorySink,
    NullSink,
    StreamingJsonlSink,
    TraceSink,
)
from .ids import IdSpace, use_id_space
from .io import (
    TraceFormatError,
    export_csv,
    iter_trace_records,
    load_trace,
    save_trace,
)
from .schema import (
    CapturePoint,
    FrameRecord,
    GrantRecord,
    MediaKind,
    PacketRecord,
    ProbeRecord,
    RanPacketTelemetry,
    RtpInfo,
    SyncExchangeRecord,
    TbKind,
    Trace,
    TransportBlockRecord,
)

__all__ = [
    "CHANNELS",
    "CapturePoint",
    "FilteredSink",
    "FrameRecord",
    "GrantRecord",
    "IdSpace",
    "InMemorySink",
    "MediaKind",
    "NullSink",
    "PacketRecord",
    "ProbeRecord",
    "RanPacketTelemetry",
    "RtpInfo",
    "StreamingJsonlSink",
    "SyncExchangeRecord",
    "TbKind",
    "Trace",
    "TraceSink",
    "TransportBlockRecord",
    "TraceFormatError",
    "export_csv",
    "iter_trace_records",
    "load_trace",
    "save_trace",
    "use_id_space",
]
