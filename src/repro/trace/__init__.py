"""Trace schema and persistence for Athena experiments."""

from .io import TraceFormatError, export_csv, load_trace, save_trace
from .schema import (
    CapturePoint,
    FrameRecord,
    GrantRecord,
    MediaKind,
    PacketRecord,
    ProbeRecord,
    RanPacketTelemetry,
    RtpInfo,
    SyncExchangeRecord,
    TbKind,
    Trace,
    TransportBlockRecord,
)

__all__ = [
    "CapturePoint",
    "FrameRecord",
    "GrantRecord",
    "MediaKind",
    "PacketRecord",
    "ProbeRecord",
    "RanPacketTelemetry",
    "RtpInfo",
    "SyncExchangeRecord",
    "TbKind",
    "Trace",
    "TransportBlockRecord",
    "TraceFormatError",
    "export_csv",
    "load_trace",
    "save_trace",
]
