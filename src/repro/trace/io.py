"""Trace persistence: JSON-Lines round-trip and CSV export.

The JSONL format writes one record per line with a ``"type"`` tag, preceded
by a single ``"meta"`` line, so traces can be streamed and concatenated.  CSV
export flattens one record family per file for spreadsheet/pandas analysis.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Tuple, Type, Union

from .schema import (
    FrameRecord,
    GrantRecord,
    MediaKind,
    PacketRecord,
    ProbeRecord,
    RanPacketTelemetry,
    RtpInfo,
    SyncExchangeRecord,
    TbKind,
    Trace,
    TransportBlockRecord,
)

_RECORD_TYPES: Dict[str, Type] = {
    "packet": PacketRecord,
    "tb": TransportBlockRecord,
    "grant": GrantRecord,
    "frame": FrameRecord,
    "probe": ProbeRecord,
    "sync": SyncExchangeRecord,
}

_TRACE_FIELDS: Dict[str, str] = {
    "packet": "packets",
    "tb": "transport_blocks",
    "grant": "grants",
    "frame": "frames",
    "probe": "probes",
    "sync": "sync_exchanges",
}


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""


def to_jsonable(value: object) -> object:
    """Convert a record (dataclass tree) into JSON-serializable builtins."""
    return _to_jsonable(value)


def _to_jsonable(value: object) -> object:
    if isinstance(value, (MediaKind, TbKind)):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # call_id is omitted when unset so single-call traces serialize
        # byte-identically to files written before the multi-call cell.
        return {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not (f.name == "call_id" and getattr(value, f.name) is None)
        }
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_to_jsonable(v) for v in value]
    return value


def _packet_from_dict(data: dict) -> PacketRecord:
    rtp = RtpInfo(**data["rtp"]) if data.get("rtp") else None
    ran = RanPacketTelemetry(**data["ran"]) if data.get("ran") else None
    return PacketRecord(
        packet_id=data["packet_id"],
        flow_id=data["flow_id"],
        kind=MediaKind(data["kind"]),
        size_bytes=data["size_bytes"],
        rtp=rtp,
        captures=dict(data.get("captures", {})),
        ran=ran,
        dropped=data.get("dropped", False),
        call_id=data.get("call_id"),
    )


def _tb_from_dict(data: dict) -> TransportBlockRecord:
    data = dict(data)
    data["kind"] = TbKind(data["kind"])
    return TransportBlockRecord(**data)


def _record_from_dict(tag: str, data: dict) -> object:
    if tag == "packet":
        return _packet_from_dict(data)
    if tag == "tb":
        return _tb_from_dict(data)
    cls = _RECORD_TYPES.get(tag)
    if cls is None:
        raise TraceFormatError(f"unknown record type: {tag!r}")
    return cls(**data)


#: Rows per batch in the chunked JSONL encoder.
JSONL_BATCH_ROWS = 1024


def encode_jsonl_batch(rows: Iterable[dict]) -> str:
    """Encode a batch of JSON-able row dicts as one JSONL string.

    One call produces the concatenated lines for the whole batch, so the
    writer issues a single ``write()`` per batch instead of one per record.
    Each line is encoded exactly as the per-record writer would
    (``json.dumps`` defaults), keeping batched output byte-identical to the
    historical record-at-a-time format.
    """
    lines = list(map(json.dumps, rows))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def write_trace_jsonl(
    trace: Trace,
    path: Union[str, Path],
    *,
    batch_rows: int = JSONL_BATCH_ROWS,
) -> int:
    """Write ``trace`` to ``path`` in the tagged JSONL format, batched.

    Output is byte-identical to the historical per-record writer (family
    order per ``_TRACE_FIELDS``, one ``meta`` line first).  A
    :class:`~repro.trace.columnar.ColumnarTrace` takes the fast path —
    JSON-able rows are built straight from the column arrays without
    materializing record objects.  Returns the record-line count.
    """
    from .columnar import ColumnarTrace

    path = Path(path)
    written = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "meta", **_to_jsonable(trace.metadata)}) + "\n")
        for tag, attr in _TRACE_FIELDS.items():
            if isinstance(trace, ColumnarTrace):
                store = trace.stores[tag]
                rows_total = store.rows

                def batch_rows_for(start: int, stop: int, _store=store, _tag=tag):
                    # json_rows puts "type" first in insertion order, which
                    # byte-identity with the per-record writer requires.
                    return _store.json_rows(start, stop, type_tag=_tag)

            else:
                records = getattr(trace, attr)
                rows_total = len(records)

                def batch_rows_for(start: int, stop: int, _records=records, _tag=tag):
                    return [
                        {"type": _tag, **_to_jsonable(r)}
                        for r in _records[start:stop]
                    ]

            for start in range(0, rows_total, batch_rows):
                stop = min(start + batch_rows, rows_total)
                fh.write(encode_jsonl_batch(batch_rows_for(start, stop)))
                written += stop - start
    return written


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the tagged JSONL format.

    Delegates to the batched :func:`write_trace_jsonl` encoder; the bytes
    are identical to the historical record-at-a-time writer.
    """
    write_trace_jsonl(trace, path)


def iter_trace_records(
    path: Union[str, Path],
) -> Iterator[Tuple[str, object]]:
    """Lazily yield ``(tag, record)`` pairs from a tagged-JSONL trace file.

    One line is parsed at a time, so readers never materialize the whole
    file — this is what the streaming analysis path
    (:mod:`repro.core.streaming`) and ``athena-repro analyze`` iterate.
    ``tag`` is a channel name from :data:`repro.trace.bus.CHANNELS`, except
    for ``"meta"`` lines, which yield their raw metadata ``dict``.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{path}:{line_no}: invalid JSON") from exc
            tag = data.pop("type", None)
            if tag is None:
                raise TraceFormatError(f"{path}:{line_no}: missing 'type' tag")
            if tag == "meta":
                yield "meta", data
                continue
            if tag not in _TRACE_FIELDS:
                raise TraceFormatError(
                    f"{path}:{line_no}: unknown record type: {tag!r}"
                )
            yield tag, _record_from_dict(tag, data)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    trace = Trace()
    for tag, record in iter_trace_records(path):
        if tag == "meta":
            trace.metadata.update(record)
        else:
            getattr(trace, _TRACE_FIELDS[tag]).append(record)
    return trace


def export_csv(trace: Trace, directory: Union[str, Path]) -> Dict[str, Path]:
    """Flatten each record family of ``trace`` into one CSV under ``directory``.

    Returns a map from record family to the written path.  Nested fields are
    JSON-encoded in a single column.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    for tag, attr in _TRACE_FIELDS.items():
        records = getattr(trace, attr)
        if not records:
            continue
        out_path = directory / f"{attr}.csv"
        rows = [_to_jsonable(r) for r in records]
        fieldnames = list(rows[0].keys())
        with out_path.open("w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fieldnames)
            writer.writeheader()
            for row in rows:
                flat = {
                    k: json.dumps(v) if isinstance(v, (dict, list)) else v
                    for k, v in row.items()
                }
                writer.writerow(flat)
        written[attr] = out_path
    return written
