"""Record schema shared by the simulator, the trace files, and Athena.

These dataclasses mirror the three measurement sources the paper combines:

* **PHY/MAC** — transport blocks and uplink grants, as captured by an
  NG-Scope-style control-channel sniffer (Fig 2, "Sniff");
* **Network** — per-packet captures at the sender, the mobile core, the SFU,
  and the receiver (Fig 2, "Packet Capture" taps 1, 2, 3/3*, 4);
* **Application** — media frames/samples with SVC-layer annotations and
  picture quality, plus the ICMP probes used to factor out the WAN.

A :class:`Trace` bundles one experiment's records together with metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..sim.units import TimeUs
# Re-exported for callers that predate session-scoped ids (trace.ids).
from .ids import new_packet_id  # noqa: F401


class MediaKind(str, Enum):
    """Classification of a packet's payload."""

    VIDEO = "video"
    AUDIO = "audio"
    PROBE = "probe"
    FEEDBACK = "feedback"
    CROSS = "cross"


class TbKind(str, Enum):
    """How the uplink grant backing a transport block was issued (§3.1)."""

    PROACTIVE = "proactive"
    REQUESTED = "requested"


class CapturePoint(str, Enum):
    """Packet-capture taps, numbered as in Fig 2 of the paper."""

    SENDER = "sender"  # tap 1: at the mobile sender
    CORE = "core"  # tap 2: at the mobile core (isolates the RAN uplink)
    SFU = "sfu"  # tap 3/3*: at the conferencing SFU
    RECEIVER = "receiver"  # tap 4: at the wired receiver


@dataclass
class RtpInfo:
    """RTP header fields Athena reads, including the SVC layer extension.

    ``frame_start`` mirrors the S bit of VP8/VP9-style payload descriptors:
    set on the first packet of a media unit, it lets the receiver detect
    frame boundaries without heuristics.
    """

    ssrc: int
    seq: int
    # RFC 3550 wire-format field name; unit is RTP media-clock ticks
    # (90 kHz video / 48 kHz audio), not simulation time.
    timestamp: int  # athena-lint: disable=ATH003
    frame_id: int
    layer_id: int = 0
    marker: bool = False
    frame_start: bool = False


@dataclass
class RanPacketTelemetry:
    """Per-packet RAN delay decomposition (the §5.3 telemetry export).

    All components are in microseconds and sum (with propagation) to the
    sender→core one-way delay:

    * ``sched_wait_us`` — TDD alignment: wait for the next uplink slot after
      the packet entered the buffer (bounded by the UL period, §3.1);
    * ``queue_wait_us`` — additional wait for a sufficient grant (the BSR
      scheduling loop) and behind earlier buffered bytes;
    * ``spread_wait_us`` — extra time a segmented packet spent spanning
      several TBs (its tail rode later uplink slots);
    * ``harq_delay_us`` — delay added by link-layer retransmissions of the
      TB(s) carrying this packet, in 10 ms multiples (§3.2).
    """

    enqueue_us: TimeUs
    first_tb_us: Optional[TimeUs] = None
    delivered_us: Optional[TimeUs] = None
    queue_wait_us: TimeUs = 0
    sched_wait_us: TimeUs = 0
    spread_wait_us: TimeUs = 0
    harq_delay_us: TimeUs = 0
    harq_rounds: int = 0
    tb_ids: List[int] = field(default_factory=list)

    def ran_induced_us(self) -> TimeUs:
        """Total RAN-attributable delay beyond pure propagation."""
        return (
            self.queue_wait_us
            + self.sched_wait_us
            + self.spread_wait_us
            + self.harq_delay_us
        )


@dataclass
class PacketRecord:
    """One datagram observed at up to four capture points."""

    packet_id: int
    flow_id: str
    kind: MediaKind
    size_bytes: int
    rtp: Optional[RtpInfo] = None
    captures: Dict[str, TimeUs] = field(default_factory=dict)
    ran: Optional[RanPacketTelemetry] = None
    dropped: bool = False
    #: Conference call this packet belongs to (None on single-call records,
    #: which predate the multi-call cell and serialize without the field).
    call_id: Optional[int] = None

    def capture_at(self, point: CapturePoint) -> Optional[TimeUs]:
        """Timestamp at a capture point, or None if never seen there."""
        return self.captures.get(point.value)

    def set_capture(self, point: CapturePoint, time_us: TimeUs) -> None:
        """Record the observation of this packet at ``point``."""
        self.captures[point.value] = time_us

    def one_way_delay_us(
        self, src: CapturePoint, dst: CapturePoint
    ) -> Optional[TimeUs]:
        """One-way delay between two capture points, or None if unseen."""
        t_src = self.captures.get(src.value)
        t_dst = self.captures.get(dst.value)
        if t_src is None or t_dst is None:
            return None
        return t_dst - t_src


@dataclass
class TransportBlockRecord:
    """One PHY transport block, as seen by the control-channel sniffer."""

    tb_id: int
    ue_id: int
    slot_us: TimeUs  # slot in which the TB was (first) transmitted
    kind: TbKind
    size_bits: int
    used_bits: int = 0
    packet_ids: List[int] = field(default_factory=list)
    harq_rounds: int = 0  # retransmission count (0 = first attempt decoded)
    failed_slot_us: List[TimeUs] = field(default_factory=list)
    delivered_us: Optional[TimeUs] = None  # decode success time, None if lost

    @property
    def is_empty(self) -> bool:
        """True if the grant went unused (padding only) — wasted bandwidth."""
        return self.used_bits == 0

    @property
    def is_retx(self) -> bool:
        """True if this TB needed at least one HARQ retransmission."""
        return self.harq_rounds > 0


@dataclass
class GrantRecord:
    """One uplink grant issued by the base station."""

    grant_id: int
    ue_id: int
    kind: TbKind
    issued_us: TimeUs
    usable_slot_us: TimeUs
    size_bits: int
    bsr_us: Optional[TimeUs] = None  # BSR that triggered it (requested only)
    bsr_bytes: Optional[int] = None


@dataclass
class FrameRecord:
    """One media unit: a video frame or an audio sample."""

    frame_id: int
    stream: str  # "video" | "audio"
    capture_us: TimeUs
    encode_done_us: TimeUs
    size_bytes: int
    svc_layer: int = 0
    target_fps: float = 0.0
    packet_ids: List[int] = field(default_factory=list)
    ssim: Optional[float] = None
    rendered_us: Optional[TimeUs] = None
    display_duration_us: Optional[TimeUs] = None
    stalled: bool = False
    #: Conference call this frame belongs to (None on single-call records).
    call_id: Optional[int] = None


@dataclass
class SyncExchangeRecord:
    """One NTP-style two-way exchange between a capture host and the core.

    All four timestamps are *local clock readings*: ``t1``/``t4`` on the
    named host, ``t2``/``t3`` on the core.  Athena's synchronization step
    estimates per-host clock offsets from these before correlating captures.
    """

    host: str  # capture point name ("sender", "receiver", "sfu")
    t1: TimeUs
    t2: TimeUs
    t3: TimeUs
    t4: TimeUs
    #: Conference call whose topology ran the exchange (None on single-call).
    call_id: Optional[int] = None


@dataclass
class ProbeRecord:
    """One ICMP echo (core → receiver path probe, orange line in Fig 3)."""

    probe_id: int
    sent_us: TimeUs
    received_us: Optional[TimeUs] = None
    #: Conference call whose prober sent the echo (None on single-call).
    call_id: Optional[int] = None

    def owd_us(self) -> Optional[TimeUs]:
        """One-way delay, or None if the probe was lost."""
        if self.received_us is None:
            return None
        return self.received_us - self.sent_us


def record_belongs_to_call(
    channel: str, record: object, call_id: int, ue_id: Optional[int]
) -> bool:
    """Whether a record is part of call ``call_id`` (UE ``ue_id``).

    Application-layer records (packets, frames, probes, sync exchanges)
    carry ``call_id`` directly; PHY records (transport blocks, grants) are
    cell-shared and attributed through the call's UE id instead.
    """
    if channel in ("tb", "grant"):
        return ue_id is not None and getattr(record, "ue_id", None) == ue_id
    return getattr(record, "call_id", None) == call_id


@dataclass
class Trace:
    """All records from one experiment, ready for Athena to correlate."""

    metadata: Dict[str, object] = field(default_factory=dict)
    packets: List[PacketRecord] = field(default_factory=list)
    transport_blocks: List[TransportBlockRecord] = field(default_factory=list)
    grants: List[GrantRecord] = field(default_factory=list)
    frames: List[FrameRecord] = field(default_factory=list)
    probes: List[ProbeRecord] = field(default_factory=list)
    sync_exchanges: List[SyncExchangeRecord] = field(default_factory=list)

    def packets_of_kind(self, kind: MediaKind) -> List[PacketRecord]:
        """Packets whose payload classification is ``kind``."""
        return [p for p in self.packets if p.kind == kind]

    def frames_of_stream(self, stream: str) -> List[FrameRecord]:
        """Frames belonging to the given media stream ("video"/"audio")."""
        return [f for f in self.frames if f.stream == stream]

    def packet_index(self) -> Dict[int, PacketRecord]:
        """Map from packet_id to record."""
        return {p.packet_id: p for p in self.packets}

    def frame_index(self) -> Dict[int, FrameRecord]:
        """Map from frame_id to record."""
        return {f.frame_id: f for f in self.frames}

    def tb_index(self) -> Dict[int, TransportBlockRecord]:
        """Map from tb_id to record."""
        return {tb.tb_id: tb for tb in self.transport_blocks}

    def call_ids(self) -> List[int]:
        """Distinct call ids tagged on this trace's records, ascending."""
        ids = {
            record.call_id
            for family in (self.packets, self.frames, self.probes, self.sync_exchanges)
            for record in family
            if record.call_id is not None
        }
        return sorted(ids)

    def for_call(self, call_id: int, ue_id: Optional[int] = None) -> "Trace":
        """The per-call view of a multi-call cell trace.

        Record objects are shared with the parent trace, not copied; PHY
        records are attributed through ``ue_id`` (see
        :func:`record_belongs_to_call`), so passing ``ue_id=None`` yields a
        view without TB/grant telemetry.
        """
        view = Trace(metadata=dict(self.metadata))
        view.metadata["call_id"] = call_id
        from .bus import CHANNEL_FIELDS  # local import: bus imports schema

        for channel, attr in CHANNEL_FIELDS.items():
            setattr(
                view,
                attr,
                [
                    record
                    for record in getattr(self, attr)
                    if record_belongs_to_call(channel, record, call_id, ue_id)
                ],
            )
        return view
