"""Columnar trace backend: typed column arrays instead of record objects.

:class:`~repro.trace.bus.InMemorySink` retains every telemetry record as a
heap-allocated dataclass — at production trace volumes (per-packet records
at four capture taps, per-TB/grant PHY telemetry, per-frame media records)
the boxing itself becomes the hot path, and shipping such a trace across a
process boundary pickles the whole object graph record by record.  This
module stores each channel as **typed column arrays** instead:

* scalar fields live in ``array('q')`` / ``array('d')`` / ``array('b')``
  pools (optionals via sentinel encoding);
* strings and enums are **interned**: the column holds small integer codes
  into a per-column string table;
* variable-length integer lists (``packet_ids``, ``tb_ids``,
  ``failed_slot_us``) use the classic offsets-plus-value-pool layout;
* packet capture stamps keep their dict *insertion order* by interning the
  key tuple and pooling the values, so JSONL serialization stays
  byte-identical to the record writer;
* nested dataclasses (``RtpInfo``, ``RanPacketTelemetry``) flatten into a
  presence bitmap plus one sub-column per field.

Mutable not-yet-final records (``final=False`` emissions) stay in a small
row-format **staging area** — the live record object — and are transposed
into the columns when finalized (or at :meth:`ColumnarSink.close`), so the
emit hot path is a single list append and the transpose runs amortized over
closed prefixes.  Readers never see the difference:
:class:`ColumnarTrace` materializes real schema dataclasses lazily on row
access (``trace.packets[i].captures`` works unchanged), caching
materialized rows so repeated access returns the *same* object — the
sharing contract :meth:`repro.trace.schema.Trace.for_call` documents.

Because the payload of a finished store is a handful of flat buffers, a
whole trace serializes to one compact ``bytes`` blob
(:meth:`ColumnarTrace.to_payload` / :func:`trace_from_payload`) — a
memcpy-shaped transport the sweep executor uses instead of pickling record
graphs (see :mod:`repro.run.batch`).
"""

from __future__ import annotations

import dataclasses
import json
import math
import operator
from array import array
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Type

from .bus import CHANNELS, TraceSink
from .schema import (
    FrameRecord,
    GrantRecord,
    MediaKind,
    PacketRecord,
    ProbeRecord,
    RanPacketTelemetry,
    RtpInfo,
    SyncExchangeRecord,
    TbKind,
    Trace,
    TransportBlockRecord,
)

#: Sentinel encoding ``None`` in optional integer columns.  Simulation
#: quantities (microsecond timestamps, sizes, ids) never reach +/-2**62.
_NONE_INT = -(1 << 62)

#: Rows a channel buffers in staging before an amortized transpose pass.
TRANSPOSE_BATCH = 512


# ----------------------------------------------------------------------
# Column types
# ----------------------------------------------------------------------
class _Column:
    """One field's storage across every row of a channel."""

    kind = ""

    def append(self, value: object) -> None:
        raise NotImplementedError

    def append_batch(self, values: List[object]) -> None:
        """Append many values at once (one call per column per transpose
        pass, instead of one per field per record)."""
        for value in values:
            self.append(value)

    def get(self, i: int) -> object:
        """The field's Python value at row ``i`` (decoded)."""
        raise NotImplementedError

    def json_value(self, i: int) -> object:
        """The field's JSON-ready value at row ``i`` (same as the record
        writer's :func:`repro.trace.io.to_jsonable` would produce)."""
        return self.get(i)

    def json_list(self, start: int, stop: int) -> List[object]:
        """JSON-ready values for rows ``[start, stop)`` in one pass."""
        return [self.json_value(i) for i in range(start, stop)]

    # -- payload (de)serialization -------------------------------------
    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        """``(json-able meta, flat buffers)`` describing this column."""
        raise NotImplementedError

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        """Restore state captured by :meth:`dump`."""
        raise NotImplementedError


class IntColumn(_Column):
    kind = "int"

    def __init__(self) -> None:
        self.data = array("q")

    def append(self, value: object) -> None:
        self.data.append(value)  # type: ignore[arg-type]

    def append_batch(self, values: List[object]) -> None:
        self.data.extend(values)  # type: ignore[arg-type]

    def get(self, i: int) -> object:
        return self.data[i]

    def json_list(self, start: int, stop: int) -> List[object]:
        return self.data[start:stop].tolist()

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        return {}, [self.data]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        (self.data,) = buffers


class OptIntColumn(IntColumn):
    kind = "optint"

    def append(self, value: object) -> None:
        self.data.append(_NONE_INT if value is None else value)  # type: ignore[arg-type]

    def append_batch(self, values: List[object]) -> None:
        self.data.extend(
            [_NONE_INT if v is None else v for v in values]  # type: ignore[misc]
        )

    def get(self, i: int) -> object:
        value = self.data[i]
        return None if value == _NONE_INT else value

    def json_list(self, start: int, stop: int) -> List[object]:
        return [
            None if v == _NONE_INT else v
            for v in self.data[start:stop].tolist()
        ]


class BoolColumn(_Column):
    kind = "bool"

    def __init__(self) -> None:
        self.data = array("b")

    def append(self, value: object) -> None:
        self.data.append(1 if value else 0)

    def append_batch(self, values: List[object]) -> None:
        self.data.extend([1 if v else 0 for v in values])

    def get(self, i: int) -> object:
        return bool(self.data[i])

    def json_list(self, start: int, stop: int) -> List[object]:
        return [_BOOLS[v] for v in self.data[start:stop]]

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        return {}, [self.data]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        (self.data,) = buffers


_BOOLS = (False, True)


class FloatColumn(_Column):
    kind = "float"

    def __init__(self) -> None:
        self.data = array("d")

    def append(self, value: object) -> None:
        # array('d') accepts ints silently; that would turn a serialized
        # `0` into `0.0` and break byte-identity, so be strict here.
        if type(value) is not float:
            raise TypeError(f"float column got {type(value).__name__}: {value!r}")
        self.data.append(value)

    def append_batch(self, values: List[object]) -> None:
        for value in values:
            if type(value) is not float:
                raise TypeError(
                    f"float column got {type(value).__name__}: {value!r}"
                )
        self.data.extend(values)  # type: ignore[arg-type]

    def get(self, i: int) -> object:
        return self.data[i]

    def json_list(self, start: int, stop: int) -> List[object]:
        return self.data[start:stop].tolist()

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        return {}, [self.data]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        (self.data,) = buffers


class OptFloatColumn(FloatColumn):
    kind = "optfloat"

    def append(self, value: object) -> None:
        if value is None:
            self.data.append(math.nan)
            return
        super().append(value)

    def append_batch(self, values: List[object]) -> None:
        for value in values:
            if value is not None and type(value) is not float:
                raise TypeError(
                    f"float column got {type(value).__name__}: {value!r}"
                )
        self.data.extend(
            math.nan if value is None else value  # type: ignore[misc]
            for value in values
        )

    def get(self, i: int) -> object:
        value = self.data[i]
        return None if value != value else value  # NaN encodes None

    def json_list(self, start: int, stop: int) -> List[object]:
        return [
            None if value != value else value
            for value in self.data[start:stop].tolist()
        ]


class StrColumn(_Column):
    """Interned strings: the column stores codes into a string table."""

    kind = "str"

    def __init__(self) -> None:
        self.data = array("i")
        self.table: List[str] = []
        self._codes: Dict[str, int] = {}

    def append(self, value: object) -> None:
        code = self._codes.get(value)  # type: ignore[arg-type]
        if code is None:
            code = len(self.table)
            self._codes[value] = code  # type: ignore[index]
            self.table.append(value)  # type: ignore[arg-type]
        self.data.append(code)

    def append_batch(self, values: List[object]) -> None:
        codes, table, lookup = [], self.table, self._codes
        for value in values:
            code = lookup.get(value)
            if code is None:
                code = len(table)
                lookup[value] = code  # type: ignore[index]
                table.append(value)  # type: ignore[arg-type]
            codes.append(code)
        self.data.extend(codes)

    def get(self, i: int) -> object:
        return self.table[self.data[i]]

    def json_list(self, start: int, stop: int) -> List[object]:
        table = self.table
        return [table[code] for code in self.data[start:stop]]

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        return {"table": self.table}, [self.data]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        self.table = list(meta["table"])  # type: ignore[arg-type]
        self._codes = {s: c for c, s in enumerate(self.table)}
        (self.data,) = buffers


class EnumColumn(StrColumn):
    """Interned enum values, decoded back to the enum member."""

    kind = "enum"

    def __init__(self, enum_type: Type) -> None:
        super().__init__()
        self.enum_type = enum_type
        self._members: List[object] = []

    def append(self, value: object) -> None:
        super().append(value.value)  # type: ignore[attr-defined]

    def append_batch(self, values: List[object]) -> None:
        super().append_batch([v.value for v in values])  # type: ignore[attr-defined]

    def get(self, i: int) -> object:
        code = self.data[i]
        while len(self._members) <= code:
            self._members.append(self.enum_type(self.table[len(self._members)]))
        return self._members[code]

    def json_value(self, i: int) -> object:
        return self.table[self.data[i]]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        super().load(meta, buffers)
        self._members = []


class IntListColumn(_Column):
    """Variable-length int lists as an offsets array plus a value pool."""

    kind = "intlist"

    def __init__(self) -> None:
        self.offsets = array("q", [0])
        self.pool = array("q")

    def append(self, value: object) -> None:
        self.pool.extend(value)  # type: ignore[arg-type]
        self.offsets.append(len(self.pool))

    def append_batch(self, values: List[object]) -> None:
        pool, ends = self.pool, []
        for value in values:
            pool.extend(value)  # type: ignore[arg-type]
            ends.append(len(pool))
        self.offsets.extend(ends)

    def get(self, i: int) -> object:
        return self.pool[self.offsets[i] : self.offsets[i + 1]].tolist()

    def json_list(self, start: int, stop: int) -> List[object]:
        offsets, pool = self.offsets, self.pool
        return [
            pool[offsets[i] : offsets[i + 1]].tolist()
            for i in range(start, stop)
        ]

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        return {}, [self.offsets, self.pool]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        self.offsets, self.pool = buffers


class CapturesColumn(_Column):
    """Packet capture stamps: ordered ``{tap: time_us}`` dicts.

    The key *tuple* is interned (there are only a handful of distinct
    capture paths) and the values go into an offsets/pool pair, so the
    reconstructed dict preserves the original insertion order — which the
    byte-identical JSONL guarantee depends on.
    """

    kind = "captures"

    def __init__(self) -> None:
        self.key_codes = array("i")
        self.key_tables: List[Tuple[str, ...]] = []
        self._codes: Dict[Tuple[str, ...], int] = {}
        self.offsets = array("q", [0])
        self.pool = array("q")

    def append(self, value: object) -> None:
        keys = tuple(value.keys())  # type: ignore[attr-defined]
        code = self._codes.get(keys)
        if code is None:
            code = len(self.key_tables)
            self._codes[keys] = code
            self.key_tables.append(keys)
        self.key_codes.append(code)
        self.pool.extend(value.values())  # type: ignore[attr-defined]
        self.offsets.append(len(self.pool))

    def append_batch(self, values: List[object]) -> None:
        lookup, tables, pool = self._codes, self.key_tables, self.pool
        codes, ends = [], []
        for value in values:
            keys = tuple(value.keys())  # type: ignore[attr-defined]
            code = lookup.get(keys)
            if code is None:
                code = len(tables)
                lookup[keys] = code
                tables.append(keys)
            codes.append(code)
            pool.extend(value.values())  # type: ignore[attr-defined]
            ends.append(len(pool))
        self.key_codes.extend(codes)
        self.offsets.extend(ends)

    def get(self, i: int) -> object:
        keys = self.key_tables[self.key_codes[i]]
        values = self.pool[self.offsets[i] : self.offsets[i + 1]]
        return dict(zip(keys, values))

    def json_list(self, start: int, stop: int) -> List[object]:
        tables, offsets, pool = self.key_tables, self.offsets, self.pool
        return [
            dict(zip(tables[code], pool[offsets[i] : offsets[i + 1]]))
            for i, code in enumerate(self.key_codes[start:stop], start)
        ]

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        meta = {"key_tables": [list(keys) for keys in self.key_tables]}
        return meta, [self.key_codes, self.offsets, self.pool]

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        self.key_tables = [tuple(keys) for keys in meta["key_tables"]]  # type: ignore[union-attr]
        self._codes = {keys: c for c, keys in enumerate(self.key_tables)}
        self.key_codes, self.offsets, self.pool = buffers


class StructColumn(_Column):
    """Optional nested dataclass flattened into per-field sub-columns."""

    kind = "struct"

    def __init__(self, struct_type: Type, field_kinds: Dict[str, object]) -> None:
        self.struct_type = struct_type
        self.present = array("b")
        self.names, self.columns = _build_columns(struct_type, field_kinds)

    def append(self, value: object) -> None:
        if value is None:
            self.present.append(0)
            for column in self.columns:
                column.append(_ABSENT_DEFAULTS[column.kind])
            return
        self.present.append(1)
        for name, column in zip(self.names, self.columns):
            column.append(getattr(value, name))

    def append_batch(self, values: List[object]) -> None:
        self.present.extend([0 if v is None else 1 for v in values])
        for name, column in zip(self.names, self.columns):
            absent = _ABSENT_DEFAULTS[column.kind]
            column.append_batch(
                [absent if v is None else getattr(v, name) for v in values]
            )

    def get(self, i: int) -> object:
        if not self.present[i]:
            return None
        return self.struct_type(*(column.get(i) for column in self.columns))

    def json_value(self, i: int) -> object:
        if not self.present[i]:
            return None
        return {
            name: column.json_value(i)
            for name, column in zip(self.names, self.columns)
        }

    def json_list(self, start: int, stop: int) -> List[object]:
        names = self.names
        subs = [column.json_list(start, stop) for column in self.columns]
        present = self.present[start:stop]
        return [
            dict(zip(names, row_values)) if present[k] else None
            for k, row_values in enumerate(zip(*subs))
        ]

    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        metas = []
        buffers: List[array] = [self.present]
        for column in self.columns:
            meta, parts = column.dump()
            metas.append({"meta": meta, "nbuf": len(parts)})
            buffers.extend(parts)
        return {"fields": metas}, buffers

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        self.present = buffers[0]
        cursor = 1
        for column, field_meta in zip(self.columns, meta["fields"]):  # type: ignore[union-attr]
            nbuf = field_meta["nbuf"]
            column.load(field_meta["meta"], buffers[cursor : cursor + nbuf])
            cursor += nbuf


#: Placeholder appended to a struct's sub-columns for absent rows.
_ABSENT_DEFAULTS: Dict[str, object] = {
    "int": 0,
    "optint": None,
    "bool": False,
    "float": 0.0,
    "optfloat": None,
    "intlist": (),
}


# ----------------------------------------------------------------------
# Channel schemas
# ----------------------------------------------------------------------
_RTP_KINDS: Dict[str, object] = {
    "ssrc": "int",
    "seq": "int",
    "timestamp": "int",  # RTP media-clock ticks (schema wire-format name)
    "frame_id": "int",
    "layer_id": "int",
    "marker": "bool",
    "frame_start": "bool",
}

_RAN_KINDS: Dict[str, object] = {
    "enqueue_us": "int",
    "first_tb_us": "optint",
    "delivered_us": "optint",
    "queue_wait_us": "int",
    "sched_wait_us": "int",
    "spread_wait_us": "int",
    "harq_delay_us": "int",
    "harq_rounds": "int",
    "tb_ids": "intlist",
}

#: channel -> (record type, field-name -> column kind).  Kinds are either a
#: string tag or a tuple carrying the enum/struct type information.
CHANNEL_SCHEMAS: Dict[str, Tuple[Type, Dict[str, object]]] = {
    "packet": (
        PacketRecord,
        {
            "packet_id": "int",
            "flow_id": "str",
            "kind": ("enum", MediaKind),
            "size_bytes": "int",
            "rtp": ("struct", RtpInfo, _RTP_KINDS),
            "captures": "captures",
            "ran": ("struct", RanPacketTelemetry, _RAN_KINDS),
            "dropped": "bool",
            "call_id": "optint",
        },
    ),
    "tb": (
        TransportBlockRecord,
        {
            "tb_id": "int",
            "ue_id": "int",
            "slot_us": "int",
            "kind": ("enum", TbKind),
            "size_bits": "int",
            "used_bits": "int",
            "packet_ids": "intlist",
            "harq_rounds": "int",
            "failed_slot_us": "intlist",
            "delivered_us": "optint",
        },
    ),
    "grant": (
        GrantRecord,
        {
            "grant_id": "int",
            "ue_id": "int",
            "kind": ("enum", TbKind),
            "issued_us": "int",
            "usable_slot_us": "int",
            "size_bits": "int",
            "bsr_us": "optint",
            "bsr_bytes": "optint",
        },
    ),
    "frame": (
        FrameRecord,
        {
            "frame_id": "int",
            "stream": "str",
            "capture_us": "int",
            "encode_done_us": "int",
            "size_bytes": "int",
            "svc_layer": "int",
            "target_fps": "float",
            "packet_ids": "intlist",
            "ssim": "optfloat",
            "rendered_us": "optint",
            "display_duration_us": "optint",
            "stalled": "bool",
            "call_id": "optint",
        },
    ),
    "probe": (
        ProbeRecord,
        {
            "probe_id": "int",
            "sent_us": "int",
            "received_us": "optint",
            "call_id": "optint",
        },
    ),
    "sync": (
        SyncExchangeRecord,
        {
            "host": "str",
            "t1": "int",
            "t2": "int",
            "t3": "int",
            "t4": "int",
            "call_id": "optint",
        },
    ),
}


def _make_column(kind: object) -> _Column:
    if kind == "int":
        return IntColumn()
    if kind == "optint":
        return OptIntColumn()
    if kind == "bool":
        return BoolColumn()
    if kind == "float":
        return FloatColumn()
    if kind == "optfloat":
        return OptFloatColumn()
    if kind == "str":
        return StrColumn()
    if kind == "intlist":
        return IntListColumn()
    if kind == "captures":
        return CapturesColumn()
    if isinstance(kind, tuple) and kind[0] == "enum":
        return EnumColumn(kind[1])
    if isinstance(kind, tuple) and kind[0] == "struct":
        return StructColumn(kind[1], kind[2])
    raise ValueError(f"unknown column kind: {kind!r}")


def _build_columns(
    record_type: Type, field_kinds: Dict[str, object]
) -> Tuple[List[str], List[_Column]]:
    """Columns in dataclass field order, asserting the schema covers it."""
    names = [f.name for f in dataclasses.fields(record_type)]
    if set(names) != set(field_kinds):
        missing = set(names) ^ set(field_kinds)
        raise RuntimeError(
            f"columnar schema out of sync with {record_type.__name__}: {missing}"
        )
    return names, [_make_column(field_kinds[name]) for name in names]


# ----------------------------------------------------------------------
# Per-channel store
# ----------------------------------------------------------------------
class ChannelStore:
    """One channel's columns plus the row-format staging area.

    Rows ``[0, base)`` live in the columns; rows ``[base, rows)`` are still
    staged as live record objects (emission order).  A staged row is
    *closed* once emitted final or finalized; closed prefixes transpose
    into the columns in batches.
    """

    def __init__(self, channel: str) -> None:
        record_type, field_kinds = CHANNEL_SCHEMAS[channel]
        self.channel = channel
        self.record_type = record_type
        self.names, self.columns = _build_columns(record_type, field_kinds)
        self._getters = [
            (operator.attrgetter(name), column)
            for name, column in zip(self.names, self.columns)
        ]
        self._has_call_id = "call_id" in self.names
        self._base = 0  # rows already transposed into the columns
        self._staged: List[List[object]] = []  # [record, closed] entries
        self._head = 0  # first staged entry not yet transposed
        self._open: Dict[int, List[object]] = {}  # id(record) -> entry
        self._cache: Dict[int, object] = {}  # row -> materialized record

    # -- write path ----------------------------------------------------
    @property
    def rows(self) -> int:
        return self._base + len(self._staged) - self._head

    def emit(self, record: object, final: bool) -> int:
        """Stage one record; returns its (stable) row index."""
        row = self.rows
        entry = [record, final]
        self._staged.append(entry)
        if not final:
            self._open[id(record)] = entry
        elif len(self._staged) - self._head >= TRANSPOSE_BATCH:
            self._transpose_ready()
        return row

    def close_record(self, record: object) -> bool:
        """Mark a staged ``final=False`` record closed; True if known."""
        entry = self._open.pop(id(record), None)
        if entry is None:
            return False
        entry[1] = True
        if len(self._staged) - self._head >= TRANSPOSE_BATCH:
            self._transpose_ready()
        return True

    def flush(self) -> None:
        """Transpose every staged row (open ones at their current state)."""
        self._encode_batch([entry[0] for entry in self._staged[self._head :]])
        self._staged.clear()
        self._head = 0
        self._open.clear()

    def _transpose_ready(self) -> None:
        staged, head = self._staged, self._head
        n = len(staged)
        while head < n and staged[head][1]:
            head += 1
        self._encode_batch([entry[0] for entry in staged[self._head : head]])
        self._head = head
        if head == n:
            staged.clear()
            self._head = 0
        elif head > 4 * TRANSPOSE_BATCH:
            del staged[:head]
            self._head = 0

    def _encode_batch(self, records: List[object]) -> None:
        # One append_batch per column (C-level extend) instead of one
        # append per field per record — the transpose hot path.
        if not records:
            return
        for getter, column in self._getters:
            column.append_batch([getter(record) for record in records])
        self._base += len(records)

    # -- read path -----------------------------------------------------
    def get(self, row: int) -> object:
        if row >= self._base:
            return self._staged[self._head + (row - self._base)][0]
        cached = self._cache.get(row)
        if cached is None:
            cached = self.record_type(
                *(column.get(row) for column in self.columns)
            )
            self._cache[row] = cached
        return cached

    def json_row(self, row: int) -> Dict[str, object]:
        """The row as the JSON-able dict the record writer would produce."""
        if row >= self._base:
            from .io import to_jsonable

            return to_jsonable(self._staged[self._head + (row - self._base)][0])  # type: ignore[return-value]
        out = {
            name: column.json_value(row)
            for name, column in zip(self.names, self.columns)
        }
        # call_id is omitted when unset so single-call traces serialize
        # byte-identically to files written before the multi-call cell.
        if out.get("call_id", 0) is None:
            del out["call_id"]
        return out

    def json_rows(
        self, start: int, stop: int, type_tag: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """JSON-able dicts for rows ``[start, stop)``, column-batched.

        Each column decodes its whole slice in one pass and the rows are
        zipped back together at C speed — the fast path behind the batch
        JSONL encoder.  Staged (not yet transposed) rows at the tail fall
        back to per-row reflection.  When ``type_tag`` is given, each dict
        gets a leading ``"type"`` key (first in insertion order, matching
        the tagged-JSONL line format) without a second per-row copy.
        """
        base = self._base
        batch_stop = min(stop, base)
        rows: List[Dict[str, object]] = []
        if start < batch_stop:
            names = self.names
            cols = [column.json_list(start, batch_stop) for column in self.columns]
            if type_tag is not None:
                names = ["type", *names]
                cols.insert(0, [type_tag] * (batch_stop - start))
            rows = [dict(zip(names, values)) for values in zip(*cols)]
            if self._has_call_id:
                for row in rows:
                    if row["call_id"] is None:
                        del row["call_id"]
        if type_tag is None:
            for i in range(max(start, batch_stop), stop):
                rows.append(self.json_row(i))
        else:
            for i in range(max(start, batch_stop), stop):
                rows.append({"type": type_tag, **self.json_row(i)})
        return rows

    # -- payload -------------------------------------------------------
    def dump(self) -> Tuple[Dict[str, object], List[array]]:
        if self._staged:
            raise RuntimeError(
                f"channel {self.channel!r} still has staged rows; close the "
                "sink before serializing"
            )
        metas = []
        buffers: List[array] = []
        for column in self.columns:
            meta, parts = column.dump()
            metas.append({"meta": meta, "nbuf": len(parts)})
            buffers.extend(parts)
        return {"rows": self._base, "columns": metas}, buffers

    def load(self, meta: Dict[str, object], buffers: List[array]) -> None:
        self._base = meta["rows"]  # type: ignore[assignment]
        cursor = 0
        for column, column_meta in zip(self.columns, meta["columns"]):  # type: ignore[union-attr]
            nbuf = column_meta["nbuf"]
            column.load(column_meta["meta"], buffers[cursor : cursor + nbuf])
            cursor += nbuf


class ChannelView:
    """List-like lazy view over one channel's rows.

    Supports the access patterns trace consumers use — ``len``, indexing
    (including negative indices and slices), iteration, equality against
    any sequence — while materializing records only on demand.
    """

    def __init__(self, store: ChannelStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.rows

    def __getitem__(self, index):
        store = self._store
        if isinstance(index, slice):
            return [store.get(i) for i in range(*index.indices(store.rows))]
        if index < 0:
            index += store.rows
        if not 0 <= index < store.rows:
            raise IndexError("trace row index out of range")
        return store.get(index)

    def __iter__(self) -> Iterator[object]:
        store = self._store
        for i in range(store.rows):
            yield store.get(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChannelView):
            other = list(other)
        if not isinstance(other, list):
            return NotImplemented
        return list(self) == other

    def __repr__(self) -> str:
        return (
            f"<ChannelView {self._store.channel!r} rows={self._store.rows}>"
        )


class ColumnarTrace(Trace):
    """A :class:`~repro.trace.schema.Trace` backed by column arrays.

    Record-family attributes are :class:`ChannelView` sequences; everything
    else (``metadata``, the helper methods, :meth:`for_call`) behaves
    exactly like the dataclass-backed trace.
    """

    def __init__(
        self,
        stores: Dict[str, ChannelStore],
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.stores = stores
        self.metadata = metadata if metadata is not None else {}
        self.packets = ChannelView(stores["packet"])  # type: ignore[assignment]
        self.transport_blocks = ChannelView(stores["tb"])  # type: ignore[assignment]
        self.grants = ChannelView(stores["grant"])  # type: ignore[assignment]
        self.frames = ChannelView(stores["frame"])  # type: ignore[assignment]
        self.probes = ChannelView(stores["probe"])  # type: ignore[assignment]
        self.sync_exchanges = ChannelView(stores["sync"])  # type: ignore[assignment]

    def to_payload(self) -> bytes:
        """Serialize to the compact flat-buffer payload format."""
        return encode_payload(self)


# ----------------------------------------------------------------------
# The sink
# ----------------------------------------------------------------------
class ColumnarSink(TraceSink):
    """Telemetry sink retaining records in :class:`ChannelStore` columns.

    Emission is a list append; closed-prefix transposes run amortized in
    :data:`TRANSPOSE_BATCH` chunks.  The sink also keeps the global *write
    order* a :class:`~repro.trace.bus.StreamingJsonlSink` would have used
    (immediate for final records, finalization-prefix order for mutable
    ones, per-channel drain at close), so :meth:`write_jsonl` reproduces
    the streaming sink's file byte for byte — proven by golden tests.
    """

    def __init__(self, metadata: Optional[Dict[str, object]] = None) -> None:
        self.stores: Dict[str, ChannelStore] = {
            channel: ChannelStore(channel) for channel in CHANNELS
        }
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._channel_code = {channel: k for k, channel in enumerate(CHANNELS)}
        self._order_channel = array("b")
        self._order_row = array("q")
        # Emission-ordered still-open rows per channel (StreamingJsonlSink's
        # prefix-flush bookkeeping, tracking row indices instead of files).
        self._open: Dict[str, "OrderedDict[int, int]"] = {
            channel: OrderedDict() for channel in CHANNELS
        }
        self._done: Dict[str, set] = {channel: set() for channel in CHANNELS}
        self._channel_of: Dict[int, str] = {}
        self._closed = False
        self._trace: Optional[ColumnarTrace] = None

    # ------------------------------------------------------------------
    def emit(self, channel: str, record: object, *, final: bool = True) -> None:
        store = self.stores.get(channel)
        if store is None:
            raise ValueError(f"unknown channel: {channel!r}")
        if self._closed:
            raise RuntimeError("columnar sink is closed")
        row = store.emit(record, final)
        if final:
            self._order_channel.append(self._channel_code[channel])
            self._order_row.append(row)
            return
        self._open[channel][id(record)] = row
        self._channel_of[id(record)] = channel

    def finalize(self, record: object) -> None:
        channel = self._channel_of.get(id(record))
        if channel is None:
            return
        self.stores[channel].close_record(record)
        self._done[channel].add(id(record))
        # Flush the completed prefix of the channel's open table into the
        # global write order, mirroring StreamingJsonlSink._flush_ready.
        table = self._open[channel]
        done = self._done[channel]
        code = self._channel_code[channel]
        while table:
            key = next(iter(table))
            if key not in done:
                break
            row = table.pop(key)
            done.discard(key)
            self._channel_of.pop(key, None)
            self._order_channel.append(code)
            self._order_row.append(row)

    def set_metadata(self, metadata: Dict[str, object]) -> None:
        self._metadata.update(metadata)

    def close(self) -> None:
        if self._closed:
            return
        for channel in CHANNELS:
            code = self._channel_code[channel]
            table = self._open[channel]
            while table:
                key, row = table.popitem(last=False)
                self._channel_of.pop(key, None)
                self._done[channel].discard(key)
                self._order_channel.append(code)
                self._order_row.append(row)
            self.stores[channel].flush()
        self._closed = True

    def result_trace(self) -> Optional[Trace]:
        if self._trace is None:
            self._trace = ColumnarTrace(self.stores, self._metadata)
        return self._trace

    # ------------------------------------------------------------------
    def write_jsonl(self, path, batch_rows: int = 1024) -> int:
        """Write the tagged-JSONL trace file, batch-encoded from columns.

        Line order (and therefore bytes) matches what a
        :class:`~repro.trace.bus.StreamingJsonlSink` fed the same emission
        sequence would have written.  Returns the record-line count.
        """
        from .io import encode_jsonl_batch, to_jsonable

        if not self._closed:
            raise RuntimeError("close the sink before writing JSONL")
        dumps = json.dumps
        channel_names = list(CHANNELS)
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(dumps({"type": "meta", **to_jsonable(self._metadata)}) + "\n")
            order_channel, order_row = self._order_channel, self._order_row
            for start in range(0, len(order_row), batch_rows):
                stop = min(start + batch_rows, len(order_row))
                rows = []
                for k in range(start, stop):
                    channel = channel_names[order_channel[k]]
                    row = self.stores[channel].json_row(order_row[k])
                    rows.append({"type": channel, **row})
                fh.write(encode_jsonl_batch(rows))
                written += len(rows)
        return written


# ----------------------------------------------------------------------
# Payload transport
# ----------------------------------------------------------------------
_PAYLOAD_MAGIC = b"ATHC1\n"


def encode_payload(trace: ColumnarTrace) -> bytes:
    """Pack a columnar trace into one compact ``bytes`` blob.

    Layout: magic, 8-byte big-endian header length, JSON header (channel
    layouts, intern tables, pickled-metadata length), then the raw column
    buffers back to back.  Buffers round-trip through
    ``array.tobytes``/``frombytes`` — a memcpy, not a per-record walk.
    """
    import pickle

    header: Dict[str, object] = {"channels": {}, "buffers": []}
    chunks: List[bytes] = []
    buffer_specs: List[List[object]] = []
    for channel, store in trace.stores.items():
        meta, buffers = store.dump()
        header["channels"][channel] = meta  # type: ignore[index]
        for buf in buffers:
            raw = buf.tobytes()
            buffer_specs.append([buf.typecode, len(raw)])
            chunks.append(raw)
    header["buffers"] = buffer_specs
    meta_blob = pickle.dumps(dict(trace.metadata), protocol=pickle.HIGHEST_PROTOCOL)
    header["metadata_bytes"] = len(meta_blob)
    header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [
        _PAYLOAD_MAGIC,
        len(header_blob).to_bytes(8, "big"),
        header_blob,
        meta_blob,
    ]
    parts.extend(chunks)
    return b"".join(parts)


def trace_from_payload(payload: bytes) -> ColumnarTrace:
    """Rebuild a :class:`ColumnarTrace` from :func:`encode_payload` bytes."""
    import pickle

    if payload[: len(_PAYLOAD_MAGIC)] != _PAYLOAD_MAGIC:
        raise ValueError("not a columnar trace payload")
    cursor = len(_PAYLOAD_MAGIC)
    header_len = int.from_bytes(payload[cursor : cursor + 8], "big")
    cursor += 8
    header = json.loads(payload[cursor : cursor + header_len])
    cursor += header_len
    meta_len = header["metadata_bytes"]
    metadata = pickle.loads(payload[cursor : cursor + meta_len])
    cursor += meta_len
    view = memoryview(payload)
    buffers: List[array] = []
    for typecode, nbytes in header["buffers"]:
        buf = array(typecode)
        buf.frombytes(view[cursor : cursor + nbytes])
        cursor += nbytes
        buffers.append(buf)
    stores: Dict[str, ChannelStore] = {}
    offset = 0
    for channel in CHANNELS:
        store = ChannelStore(channel)
        meta = header["channels"][channel]
        nbuf = sum(column["nbuf"] for column in meta["columns"])
        store.load(meta, buffers[offset : offset + nbuf])
        offset += nbuf
        stores[channel] = store
    return ColumnarTrace(stores, metadata)


def columnar_trace_from_trace(trace: Trace) -> ColumnarTrace:
    """Transpose an ordinary record-backed trace into columns."""
    from .bus import CHANNEL_FIELDS

    if isinstance(trace, ColumnarTrace):
        return trace
    sink = ColumnarSink(metadata=dict(trace.metadata))
    for channel, attr in CHANNEL_FIELDS.items():
        for record in getattr(trace, attr):
            sink.emit(channel, record)
    sink.close()
    result = sink.result_trace()
    assert isinstance(result, ColumnarTrace)
    return result
