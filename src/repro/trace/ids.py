"""Per-session record-identifier allocation.

Every record family (packets, transport blocks, grants, frames) carries a
small integer id that the correlation layer joins on.  Historically these
came from process-global ``itertools.count`` objects, which meant the ids a
session handed out depended on every run that executed earlier in the same
process — back-to-back sessions produced different traces for the same seed.

An :class:`IdSpace` owns one counter per family.  The scenario runner
installs a fresh space for each session (:func:`use_id_space`), so ids
always start at 1 and a fixed seed yields a byte-identical trace no matter
what ran before.  Code that allocates ids outside a session (unit tests,
ad-hoc scripts) falls back to a shared process-default space, preserving the
old uniqueness guarantee.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class IdSpace:
    """Independent id counters for one session's records."""

    __slots__ = ("_packet", "_tb", "_grant", "_frame")

    def __init__(self) -> None:
        self._packet = 0
        self._tb = 0
        self._grant = 0
        self._frame = 0

    def next_packet_id(self) -> int:
        """Allocate the next packet identifier (1-based)."""
        self._packet += 1
        return self._packet

    def next_tb_id(self) -> int:
        """Allocate the next transport-block identifier (1-based)."""
        self._tb += 1
        return self._tb

    def next_grant_id(self) -> int:
        """Allocate the next uplink-grant identifier (1-based)."""
        self._grant += 1
        return self._grant

    def next_frame_id(self) -> int:
        """Allocate the next media-frame identifier (1-based)."""
        self._frame += 1
        return self._frame


_DEFAULT_SPACE = IdSpace()
_current_space = _DEFAULT_SPACE


def current_id_space() -> IdSpace:
    """The id space new records draw from right now."""
    return _current_space


@contextmanager
def use_id_space(space: IdSpace) -> Iterator[IdSpace]:
    """Install ``space`` as the allocation source for the ``with`` body.

    The previous space is restored on exit, so nested sessions (or a session
    driven step-by-step around other allocations) stay isolated.
    """
    global _current_space
    previous = _current_space
    _current_space = space
    try:
        yield space
    finally:
        _current_space = previous


def new_packet_id() -> int:
    """Allocate a packet id from the current space."""
    return _current_space.next_packet_id()


def new_tb_id() -> int:
    """Allocate a transport-block id from the current space."""
    return _current_space.next_tb_id()


def new_grant_id() -> int:
    """Allocate an uplink-grant id from the current space."""
    return _current_space.next_grant_id()


def new_frame_id() -> int:
    """Allocate a media-frame id from the current space."""
    return _current_space.next_frame_id()
