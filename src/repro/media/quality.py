"""Picture-quality model and QoE metric computation.

The paper measures SSIM by comparing each received frame against the
corresponding sent frame (QR-code identified).  Received quality is then a
function of how many bits the encoder spent on the frame — we model the
canonical saturating rate-distortion relationship

    SSIM(bpp) = ssim_max - span * exp(-k * bpp)

calibrated so that the paper's operating range (roughly 300–1200 kbps at
360p) lands in Fig 7d's observed 0.80–0.88 band.  The QoE aggregation
functions reproduce the metrics of Fig 7: windowed receive bitrate,
frame-level jitter, rendered frame rate, and the SSIM distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.units import TimeUs, US_PER_SEC, us_to_ms
from ..trace.schema import CapturePoint, FrameRecord, MediaKind, PacketRecord

SSIM_MAX = 0.90
SSIM_SPAN = 0.105
SSIM_K = 11.0


def ssim_from_bpp(bits_per_pixel: float, noise: float = 0.0) -> float:
    """Structural similarity of an encoded frame given its bit budget."""
    if bits_per_pixel < 0:
        raise ValueError(f"bits per pixel must be >= 0: {bits_per_pixel}")
    value = SSIM_MAX - SSIM_SPAN * math.exp(-SSIM_K * bits_per_pixel) + noise
    return float(min(0.99, max(0.40, value)))


@dataclass
class QoeSummary:
    """Fig 7's four metrics, plus stall statistics."""

    receive_bitrate_kbps: List[float]
    frame_jitter_ms: List[float]
    frame_rate_fps: List[float]
    ssim: List[float]
    stall_count: int
    mean_frame_delay_ms: float

    def medians(self) -> dict:
        """Median of each QoE metric (handy for bench tables)."""

        def med(xs: Sequence[float]) -> float:
            return float(np.median(xs)) if len(xs) else float("nan")

        return {
            "bitrate_kbps": med(self.receive_bitrate_kbps),
            "jitter_ms": med(self.frame_jitter_ms),
            "fps": med(self.frame_rate_fps),
            "ssim": med(self.ssim),
        }


def windowed_receive_bitrate_kbps(
    packets: Sequence[PacketRecord],
    window_us: TimeUs = US_PER_SEC,
    point: CapturePoint = CapturePoint.RECEIVER,
) -> List[float]:
    """Received media bitrate per window (Fig 7a / Fig 8 top)."""
    arrivals: List[Tuple[TimeUs, int]] = []
    for p in packets:
        if p.kind not in (MediaKind.VIDEO, MediaKind.AUDIO):
            continue
        t = p.capture_at(point)
        if t is not None:
            arrivals.append((t, p.size_bytes))
    if not arrivals:
        return []
    arrivals.sort()
    start = arrivals[0][0]
    end = arrivals[-1][0]
    n_windows = int((end - start) // window_us) + 1
    bits = [0.0] * n_windows
    for t, size in arrivals:
        bits[int((t - start) // window_us)] += size * 8
    seconds_per_window = window_us / US_PER_SEC
    return [b / seconds_per_window / 1_000 for b in bits]


def frame_level_jitter_ms(frames: Sequence[FrameRecord]) -> List[float]:
    """Frame-level jitter (Fig 7b): |Δarrival − Δcapture| per frame pair.

    Arrival of a frame is the arrival of its last packet, approximated here
    by the recorded render-ready time.
    """
    complete = sorted(
        (f for f in frames if f.rendered_us is not None and f.stream == "video"),
        key=lambda f: f.capture_us,
    )
    jitter: List[float] = []
    for prev, cur in zip(complete, complete[1:]):
        d_arrival = cur.rendered_us - prev.rendered_us
        d_capture = cur.capture_us - prev.capture_us
        jitter.append(abs(us_to_ms(d_arrival - d_capture)))
    return jitter


def frame_rate_series(
    frames: Sequence[FrameRecord], window_us: TimeUs = US_PER_SEC
) -> List[float]:
    """Rendered video frames per second, per window (Fig 7c / Fig 8 middle)."""
    rendered = sorted(
        f.rendered_us
        for f in frames
        if f.rendered_us is not None and f.stream == "video"
    )
    if not rendered:
        return []
    start, end = rendered[0], rendered[-1]
    n_windows = int((end - start) // window_us) + 1
    counts = [0] * n_windows
    for t in rendered:
        counts[int((t - start) // window_us)] += 1
    seconds_per_window = window_us / US_PER_SEC
    return [c / seconds_per_window for c in counts]


def ssim_values(frames: Sequence[FrameRecord]) -> List[float]:
    """SSIM of every rendered video frame (Fig 7d)."""
    return [
        f.ssim
        for f in frames
        if f.ssim is not None and f.rendered_us is not None and f.stream == "video"
    ]


def qoe_summary(
    packets: Sequence[PacketRecord],
    frames: Sequence[FrameRecord],
    window_us: TimeUs = US_PER_SEC,
) -> QoeSummary:
    """Aggregate all Fig 7 metrics for one experiment run."""
    video_frames = [f for f in frames if f.stream == "video"]
    delays = [
        us_to_ms(f.rendered_us - f.capture_us)
        for f in video_frames
        if f.rendered_us is not None
    ]
    return QoeSummary(
        receive_bitrate_kbps=windowed_receive_bitrate_kbps(packets, window_us),
        frame_jitter_ms=frame_level_jitter_ms(frames),
        frame_rate_fps=frame_rate_series(frames, window_us),
        ssim=ssim_values(frames),
        stall_count=sum(1 for f in video_frames if f.stalled),
        mean_frame_delay_ms=float(np.mean(delays)) if delays else float("nan"),
    )


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    if len(values) == 0:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(values, dtype=float))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile helper returning NaN on empty input."""
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))
