"""Receiver-side jitter buffer and display accounting.

The jitter buffer trades mouth-to-ear delay against stall risk (§2): it
holds completed frames until an adaptive playout deadline computed from the
recent minimum transit time plus a jitter-scaled safety margin.  The
renderer tracks how long each frame stayed on screen — the paper's QR-code
+ 70 fps screen-capture methodology — flagging frames displayed much longer
than their packetization interval as stalls.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.units import TimeUs, ms
from ..trace.bus import TraceSink
from ..trace.schema import FrameRecord
from .rtp import FrameAssembly

# Screen-capture sampling used by the paper's methodology: 70 fps.
SCREEN_SAMPLE_US: TimeUs = 14_286

RenderCallback = Callable[[FrameRecord, TimeUs], None]


class AdaptiveJitterBuffer:
    """Playout scheduling with an adaptive delay target.

    Target playout for a frame captured at ``c``::

        playout(c) = c + min_recent_transit + max(min_margin, beta * jitter)

    where ``jitter`` is an EWMA of transit-time variation (RFC 3550 style)
    and ``min_recent_transit`` is tracked over a sliding window so the
    buffer drains after a delay spike subsides.
    """

    def __init__(
        self,
        sim: Simulator,
        nominal_frame_period_us: TimeUs,
        min_margin_us: TimeUs = ms(10.0),
        beta: float = 4.0,
        max_target_us: TimeUs = ms(1_000.0),
        transit_window_us: TimeUs = ms(2_000.0),
        stall_factor: float = 1.8,
        on_render: Optional[RenderCallback] = None,
        sink: Optional[TraceSink] = None,
    ) -> None:
        self._sim = sim
        self._sink = sink
        self.nominal_frame_period_us = nominal_frame_period_us
        self.min_margin_us = min_margin_us
        self.beta = beta
        self.max_target_us = max_target_us
        self.transit_window_us = transit_window_us
        self.stall_factor = stall_factor
        self.on_render = on_render

        self._jitter_us = 0.0
        self._prev_transit: Optional[TimeUs] = None
        self._transits: Deque[Tuple[TimeUs, TimeUs]] = deque()  # (arrival, transit)
        self._last_rendered_capture: Optional[TimeUs] = None
        self._last_render: Optional[Tuple[FrameRecord, TimeUs]] = None
        self.frames_rendered = 0
        self.frames_dropped_late = 0
        self.stalls = 0

    # ------------------------------------------------------------------
    def current_delay_target_us(self) -> TimeUs:
        """The adaptive buffering delay currently applied on top of transit."""
        margin = max(self.min_margin_us, int(self.beta * self._jitter_us))
        return min(margin, self.max_target_us)

    def jitter_estimate_us(self) -> float:
        """EWMA of frame transit-time variation."""
        return self._jitter_us

    def on_frame(self, frame: FrameRecord, assembly: FrameAssembly) -> None:
        """Handle a fully reassembled frame."""
        arrival = assembly.last_arrival_us
        assert arrival is not None
        capture = frame.capture_us
        transit = arrival - capture

        # Jitter EWMA (RFC 3550 §6.4.1 shape).
        if self._prev_transit is not None:
            d = abs(transit - self._prev_transit)
            self._jitter_us += (d - self._jitter_us) / 16.0
        self._prev_transit = transit

        # Sliding-window minimum transit.
        self._transits.append((arrival, transit))
        horizon = arrival - self.transit_window_us
        while self._transits and self._transits[0][0] < horizon:
            self._transits.popleft()
        min_transit = min(t for _, t in self._transits)

        if (
            self._last_rendered_capture is not None
            and capture <= self._last_rendered_capture
        ):
            self.frames_dropped_late += 1
            return

        target = capture + min_transit + self.current_delay_target_us()
        render_at = max(arrival, target, self._sim.now)
        self._last_rendered_capture = capture
        self._sim.at(render_at, lambda: self._render(frame, render_at))

    # ------------------------------------------------------------------
    def _render(self, frame: FrameRecord, render_us: TimeUs) -> None:
        frame.rendered_us = render_us
        if self._last_render is not None:
            prev_frame, prev_render = self._last_render
            duration_us = render_us - prev_render
            # Quantize to the 70 fps screen-capture grid, as the paper's
            # measurement pipeline would observe it.
            samples = max(1, round(duration_us / SCREEN_SAMPLE_US))
            prev_frame.display_duration_us = samples * SCREEN_SAMPLE_US
            if duration_us > self.stall_factor * self.nominal_frame_period_us:
                prev_frame.stalled = True
                self.stalls += 1
            if self._sink is not None:
                # Display accounting only lands when the *next* frame
                # renders, so the previous record is terminal now.
                self._sink.finalize(prev_frame)
        self._last_render = (frame, render_us)
        self.frames_rendered += 1
        if self.on_render is not None:
            self.on_render(frame, render_us)
