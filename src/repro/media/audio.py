"""Opus-like audio source: one ~20 ms sample per packet.

Audio samples rarely span multiple packets (§2), which is why the paper
finds audio less delayed than video: an audio packet only suffers frame-
level delay spread when it happens to queue behind a video burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.units import TimeUs, ms


@dataclass
class AudioSample:
    """One encoded audio sample."""

    size_bytes: int
    duration_us: TimeUs


class AudioSource:
    """Constant-interval audio sampler with mild size variation and DTX."""

    def __init__(
        self,
        rng: np.random.Generator,
        sample_interval_us: TimeUs = ms(20.0),
        payload_bytes: int = 160,  # ~64 kbps Opus
        size_sigma: float = 0.08,
        dtx_prob: float = 0.05,
        dtx_bytes: int = 24,
    ) -> None:
        if sample_interval_us <= 0:
            raise ValueError("sample interval must be positive")
        self._rng = rng
        self.sample_interval_us = sample_interval_us
        self.payload_bytes = payload_bytes
        self.size_sigma = size_sigma
        self.dtx_prob = dtx_prob
        self.dtx_bytes = dtx_bytes
        self.samples_produced = 0

    def next_sample(self) -> AudioSample:
        """Produce the next 20 ms audio sample."""
        if self._rng.random() < self.dtx_prob:
            size = self.dtx_bytes
        else:
            size = max(
                16, int(self.payload_bytes * self._rng.lognormal(0.0, self.size_sigma))
            )
        self.samples_produced += 1
        return AudioSample(size_bytes=size, duration_us=self.sample_interval_us)
