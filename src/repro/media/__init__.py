"""Application-layer media stack: codec, SVC, audio, RTP, jitter buffer, QoE."""

from .audio import AudioSample, AudioSource
from .codec import EncodedFrame, VideoEncoder
from .jitter import SCREEN_SAMPLE_US, AdaptiveJitterBuffer
from .quality import (
    QoeSummary,
    cdf,
    frame_level_jitter_ms,
    frame_rate_series,
    percentile,
    qoe_summary,
    ssim_from_bpp,
    ssim_values,
    windowed_receive_bitrate_kbps,
)
from .screen import (
    CAPTURE_PERIOD_US,
    CAPTURE_RATE_HZ,
    ScreenObservation,
    ScreenSample,
    capture_screen,
)
from .rtp import (
    DEFAULT_MTU_PAYLOAD,
    FrameAssembly,
    FrameReassembler,
    RtpPacketizer,
)
from .svc import (
    CAPTURE_SLOT_US,
    FULL_RATE_FPS,
    FpsMode,
    SvcLayer,
    frame_period_us,
    layer_for_slot,
    layers_active,
    nominal_fps,
)

__all__ = [
    "AdaptiveJitterBuffer",
    "AudioSample",
    "AudioSource",
    "CAPTURE_PERIOD_US",
    "CAPTURE_RATE_HZ",
    "CAPTURE_SLOT_US",
    "DEFAULT_MTU_PAYLOAD",
    "EncodedFrame",
    "FULL_RATE_FPS",
    "FpsMode",
    "FrameAssembly",
    "FrameReassembler",
    "QoeSummary",
    "RtpPacketizer",
    "ScreenObservation",
    "ScreenSample",
    "SCREEN_SAMPLE_US",
    "SvcLayer",
    "VideoEncoder",
    "capture_screen",
    "cdf",
    "frame_level_jitter_ms",
    "frame_period_us",
    "frame_rate_series",
    "layer_for_slot",
    "layers_active",
    "nominal_fps",
    "percentile",
    "qoe_summary",
    "ssim_from_bpp",
    "ssim_values",
    "windowed_receive_bitrate_kbps",
]
