"""Scalable Video Coding temporal layers, as Zoom uses them (§2, Fig 8).

Zoom scales frame rate through SVC's temporal dimension: a base layer at
seven or 14 fps plus enhancement layers reaching 14 or 28 fps.  When the
target is 14 fps the enhancement layer carries a different RTP identifier
("Low-FPS Enhancement").  We reproduce the four operating points the
paper's Fig 8 exhibits:

* ``FULL``  — 28 fps: 14 fps base + 14 fps high-FPS enhancement;
* ``SKIP``  — ≈21 fps: transient frame skipping under high jitter
  (every other enhancement frame dropped);
* ``LOW``   — 14 fps: 7 fps base + 7 fps low-FPS enhancement, the
  persistent reaction to very high absolute delay;
* ``BASE``  — 7 fps: base layer only.

The capture clock always ticks at the full rate (one slot every 1/28 s);
a mode decides, per slot, whether to encode and at which layer.
"""

from __future__ import annotations

from enum import Enum, IntEnum
from typing import Optional

from ..sim.units import TimeUs, US_PER_SEC


class SvcLayer(IntEnum):
    """Temporal layer identifiers carried in the RTP header extension."""

    BASE = 0
    LOW_FPS_ENH = 1
    HIGH_FPS_ENH = 2


class FpsMode(Enum):
    """Operating points of Zoom's frame-rate adaptation."""

    FULL = "full_28"
    SKIP = "skip_21"
    LOW = "low_14"
    BASE = "base_7"


FULL_RATE_FPS = 28.0
CAPTURE_SLOT_US: TimeUs = round(US_PER_SEC / FULL_RATE_FPS)

# Per-mode layer pattern over a 4-slot cycle of the 28 fps capture clock.
# ``None`` means the slot is skipped (not encoded, not sent).
_PATTERNS = {
    FpsMode.FULL: (
        SvcLayer.BASE,
        SvcLayer.HIGH_FPS_ENH,
        SvcLayer.BASE,
        SvcLayer.HIGH_FPS_ENH,
    ),
    FpsMode.SKIP: (
        SvcLayer.BASE,
        SvcLayer.HIGH_FPS_ENH,
        SvcLayer.BASE,
        None,
    ),
    FpsMode.LOW: (SvcLayer.BASE, None, SvcLayer.LOW_FPS_ENH, None),
    FpsMode.BASE: (SvcLayer.BASE, None, None, None),
}

MODE_FPS = {
    FpsMode.FULL: 28.0,
    FpsMode.SKIP: 21.0,
    FpsMode.LOW: 14.0,
    FpsMode.BASE: 7.0,
}


def layer_for_slot(mode: FpsMode, slot_index: int) -> Optional[SvcLayer]:
    """Which layer (if any) the given capture slot carries in ``mode``."""
    pattern = _PATTERNS[mode]
    return pattern[slot_index % len(pattern)]


def nominal_fps(mode: FpsMode) -> float:
    """Frame rate delivered by ``mode`` when nothing is lost."""
    return MODE_FPS[mode]


def frame_period_us(mode: FpsMode) -> TimeUs:
    """Average spacing between sent frames in ``mode``."""
    return round(US_PER_SEC / MODE_FPS[mode])


def layers_active(mode: FpsMode) -> set:
    """The set of SVC layers a mode transmits (for Fig 8's bitrate split)."""
    return {layer for layer in _PATTERNS[mode] if layer is not None}
