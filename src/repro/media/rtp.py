"""RTP packetization and frame reassembly.

A video frame (often several packets, sent as a burst) is split into MTU-
sized RTP packets sharing a frame id and an SVC layer id in the header
extension, with the marker bit on the last packet (how VCAs signal frame
boundaries).  The receiver-side :class:`FrameReassembler` detects frame
completion and reports per-frame first/last packet arrivals — the basis of
the paper's delay-spread analysis (Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..net.packet import (
    AUDIO_SSRC,
    RTP_AUDIO_CLOCK_HZ,
    RTP_VIDEO_CLOCK_HZ,
    VIDEO_SSRC,
    make_rtp_packet,
)
from ..sim.units import TimeUs, US_PER_SEC
from ..trace.ids import IdSpace
from ..trace.schema import MediaKind, PacketRecord

DEFAULT_MTU_PAYLOAD = 1_100


class RtpPacketizer:
    """Sender-side splitter: one media unit -> a burst of RTP packets."""

    def __init__(
        self,
        flow_id: str,
        kind: MediaKind,
        ssrc: Optional[int] = None,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        ids: Optional[IdSpace] = None,
    ) -> None:
        if mtu_payload <= 0:
            raise ValueError("MTU payload must be positive")
        self.flow_id = flow_id
        self.kind = kind
        self.ssrc = ssrc or (VIDEO_SSRC if kind == MediaKind.VIDEO else AUDIO_SSRC)
        self.mtu_payload = mtu_payload
        #: Call-scoped packet-id allocation; None draws from the session's
        #: ambient id space (single-call behavior).
        self.ids = ids
        self._seq = 0
        clock = RTP_VIDEO_CLOCK_HZ if kind == MediaKind.VIDEO else RTP_AUDIO_CLOCK_HZ
        self._clock_hz = clock

    def packetize(
        self, frame_id: int, layer_id: int, size_bytes: int, capture_us: TimeUs
    ) -> List[PacketRecord]:
        """Split one media unit into RTP packets (burst order preserved)."""
        if size_bytes <= 0:
            raise ValueError(f"media unit size must be positive: {size_bytes}")
        timestamp_ticks = int(capture_us * self._clock_hz / US_PER_SEC)
        packets: List[PacketRecord] = []
        remaining = size_bytes
        first = True
        while remaining > 0:
            payload = min(self.mtu_payload, remaining)
            remaining -= payload
            packets.append(
                make_rtp_packet(
                    flow_id=self.flow_id,
                    kind=self.kind,
                    payload_bytes=payload,
                    ssrc=self.ssrc,
                    seq=self._seq,
                    timestamp_ticks=timestamp_ticks,
                    frame_id=frame_id,
                    layer_id=layer_id,
                    marker=remaining == 0,
                    frame_start=first,
                    ids=self.ids,
                )
            )
            first = False
            self._seq += 1
        return packets


@dataclass
class FrameAssembly:
    """Receiver-side view of one frame's packets."""

    frame_id: int
    layer_id: int
    first_arrival_us: Optional[TimeUs] = None
    last_arrival_us: Optional[TimeUs] = None
    received_bytes: int = 0
    received_count: int = 0
    min_seq: Optional[int] = None
    start_seq: Optional[int] = None  # seq of the frame-start packet
    marker_seq: Optional[int] = None
    rtp_ticks: Optional[int] = None  # RTP media-clock timestamp
    packet_ids: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True once every packet from frame start to the marker arrived."""
        if self.marker_seq is None or self.start_seq is None:
            return False
        return self.received_count == self.marker_seq - self.start_seq + 1

    def spread_us(self) -> Optional[TimeUs]:
        """Delay spread: time between first and last packet of the frame."""
        if self.first_arrival_us is None or self.last_arrival_us is None:
            return None
        return self.last_arrival_us - self.first_arrival_us


FrameCompleteCallback = Callable[[FrameAssembly], None]


class FrameReassembler:
    """Groups arriving RTP packets back into frames."""

    def __init__(self, on_frame_complete: FrameCompleteCallback) -> None:
        self._on_complete = on_frame_complete
        self._assemblies: Dict[int, FrameAssembly] = {}
        self.frames_completed = 0
        self.duplicate_packets = 0

    def on_packet(self, packet: PacketRecord, arrival_us: TimeUs) -> None:
        """Feed one received RTP packet into reassembly."""
        rtp = packet.rtp
        if rtp is None:
            raise ValueError(f"packet {packet.packet_id} has no RTP info")
        assembly = self._assemblies.get(rtp.frame_id)
        if assembly is None:
            assembly = FrameAssembly(frame_id=rtp.frame_id, layer_id=rtp.layer_id)
            self._assemblies[rtp.frame_id] = assembly
        if packet.packet_id in assembly.packet_ids:
            self.duplicate_packets += 1
            return
        assembly.packet_ids.append(packet.packet_id)
        assembly.received_count += 1
        assembly.received_bytes += packet.size_bytes
        assembly.rtp_ticks = rtp.timestamp
        if assembly.first_arrival_us is None or arrival_us < assembly.first_arrival_us:
            assembly.first_arrival_us = arrival_us
        if assembly.last_arrival_us is None or arrival_us > assembly.last_arrival_us:
            assembly.last_arrival_us = arrival_us
        if assembly.min_seq is None or rtp.seq < assembly.min_seq:
            assembly.min_seq = rtp.seq
        if rtp.frame_start:
            assembly.start_seq = rtp.seq
        if rtp.marker:
            assembly.marker_seq = rtp.seq
        if assembly.complete:
            del self._assemblies[rtp.frame_id]
            self.frames_completed += 1
            self._on_complete(assembly)

    def pending_frames(self) -> int:
        """Frames still missing packets (lost or in flight)."""
        return len(self._assemblies)
