"""The paper's screen-capture measurement methodology, §2.

"We inject a prerecorded video file, annotated frame-by-frame with QR
codes, via a virtual camera device.  At the receiver side, we capture the
screen at 70 fps (slightly above the typical monitor refresh rate).  Using
this method, we determine if a particular frame was on the screen for
longer than its intended (packetization) time."

:class:`ScreenCapture` replays that pipeline over the renderer's output:
it samples which frame id is "on screen" every 1/70 s (the QR decode) and
derives displayed-duration, frame-rate, and stall statistics *from the
samples alone* — an independent observer that the internal renderer
accounting can be validated against.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.units import TimeUs, US_PER_SEC
from ..trace.schema import FrameRecord

CAPTURE_RATE_HZ = 70.0
CAPTURE_PERIOD_US: TimeUs = round(US_PER_SEC / CAPTURE_RATE_HZ)


@dataclass
class ScreenSample:
    """One screen grab: which frame's QR code was visible."""

    time_us: TimeUs
    frame_id: Optional[int]  # None before the first frame renders


@dataclass
class ScreenObservation:
    """Statistics derived purely from the sampled screen."""

    samples: List[ScreenSample] = field(default_factory=list)

    def frames_seen(self) -> List[int]:
        """Distinct frame ids in display order."""
        seen: List[int] = []
        for sample in self.samples:
            if sample.frame_id is not None and (
                not seen or seen[-1] != sample.frame_id
            ):
                seen.append(sample.frame_id)
        return seen

    def display_durations_us(self) -> List[Tuple[int, TimeUs]]:
        """(frame_id, on-screen duration) from consecutive samples."""
        durations: List[Tuple[int, TimeUs]] = []
        current: Optional[int] = None
        count = 0
        for sample in self.samples:
            if sample.frame_id == current:
                count += 1
                continue
            if current is not None:
                durations.append((current, count * CAPTURE_PERIOD_US))
            current = sample.frame_id
            count = 1
        if current is not None:
            durations.append((current, count * CAPTURE_PERIOD_US))
        return [(fid, d) for fid, d in durations if fid is not None]

    def observed_fps(self) -> float:
        """Average displayed frame rate over the observation."""
        frames = self.frames_seen()
        if len(self.samples) < 2 or not frames:
            return 0.0
        span_s = (self.samples[-1].time_us - self.samples[0].time_us) / US_PER_SEC
        return len(frames) / span_s if span_s > 0 else 0.0

    def stalls(self, nominal_period_us: TimeUs, factor: float = 1.8) -> int:
        """Frames on screen much longer than their packetization time."""
        return sum(
            1
            for _fid, duration in self.display_durations_us()
            if duration > factor * nominal_period_us
        )


def capture_screen(
    frames: Sequence[FrameRecord],
    start_us: TimeUs,
    end_us: TimeUs,
    period_us: TimeUs = CAPTURE_PERIOD_US,
) -> ScreenObservation:
    """Sample the rendered-frame timeline like the paper's screen recorder.

    A frame is "on screen" from its render time until the next frame
    renders.
    """
    rendered = sorted(
        (
            (f.rendered_us, f.frame_id)
            for f in frames
            if f.stream == "video" and f.rendered_us is not None
        ),
    )
    times = [t for t, _ in rendered]
    observation = ScreenObservation()
    t = start_us
    while t <= end_us:
        idx = bisect_right(times, t) - 1
        frame_id = rendered[idx][1] if idx >= 0 else None
        observation.samples.append(ScreenSample(time_us=t, frame_id=frame_id))
        t += period_us
    return observation
