"""Video encoder model: P-frame sizes and per-frame picture quality.

VCAs transmit nearly all video as P-frames whose sizes rarely change much
(§5.2), so the encoder model draws frame sizes around ``bitrate / fps``
with modest lognormal variation and occasional scene-change spikes.  The
per-frame SSIM follows the rate-distortion model in
:mod:`repro.media.quality`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .quality import ssim_from_bpp
from .svc import SvcLayer


@dataclass
class EncodedFrame:
    """Output of encoding one capture slot."""

    size_bytes: int
    ssim: float
    layer: SvcLayer


class VideoEncoder:
    """Rate-controlled P-frame encoder model.

    The target bitrate is set by congestion control through
    :meth:`set_target_bitrate`; the effective frame rate (for the per-frame
    bit budget) by the adaptation policy through :meth:`set_frame_rate`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        resolution_pixels: int = 640 * 360,
        min_bitrate_kbps: float = 80.0,
        max_bitrate_kbps: float = 1_500.0,
        size_sigma: float = 0.12,
        scene_change_prob: float = 0.004,
        scene_change_scale: float = 2.5,
    ) -> None:
        if resolution_pixels <= 0:
            raise ValueError("resolution must be positive")
        self._rng = rng
        self.resolution_pixels = resolution_pixels
        self.min_bitrate_kbps = min_bitrate_kbps
        self.max_bitrate_kbps = max_bitrate_kbps
        self.size_sigma = size_sigma
        self.scene_change_prob = scene_change_prob
        self.scene_change_scale = scene_change_scale
        self._target_kbps = 600.0
        self._fps = 28.0
        self.frames_encoded = 0
        self.bytes_encoded = 0

    @property
    def target_bitrate_kbps(self) -> float:
        """Current encoder rate target."""
        return self._target_kbps

    def set_target_bitrate(self, kbps: float) -> None:
        """Clamp and apply a congestion-control rate decision."""
        self._target_kbps = float(
            min(self.max_bitrate_kbps, max(self.min_bitrate_kbps, kbps))
        )

    def set_frame_rate(self, fps: float) -> None:
        """Tell the rate controller how many frames share the bit budget."""
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        self._fps = float(fps)

    def encode(self, layer: SvcLayer) -> EncodedFrame:
        """Encode one frame at the current rate operating point."""
        mean_bytes = self._target_kbps * 1_000 / 8 / self._fps
        size = mean_bytes * self._rng.lognormal(0.0, self.size_sigma)
        if self._rng.random() < self.scene_change_prob:
            size *= self.scene_change_scale
        size_bytes = max(200, int(size))
        bpp = size_bytes * 8 / self.resolution_pixels
        noise = float(self._rng.normal(0.0, 0.004))
        self.frames_encoded += 1
        self.bytes_encoded += size_bytes
        return EncodedFrame(
            size_bytes=size_bytes, ssim=ssim_from_bpp(bpp, noise), layer=layer
        )
