"""Fig 8 — Zoom adaptation: SVC layers, frame rate, and delay.

Paper: Zoom reacts to very high absolute delay (>1 s) by switching the SVC
layer set and "more permanently" dropping to 14 fps; under high jitter it
transiently skips frames to ~20 fps.  The low-FPS enhancement layer appears
only in the 14 fps regime.
"""

from repro.experiments import run_fig8
from repro.media import FpsMode

from .conftest import banner


def test_fig8_adaptation(once):
    result = once(run_fig8, duration_s=90.0, seed=7)
    print(banner(
        "Fig 8: adaptation time series under a load+fade episode",
        "delay >1 s -> persistent 14 fps via SVC layer switch; "
        "transient skip (~21 fps) on the way",
    ))
    print(result.summary())
    layers = result.series.bitrate_kbps_by_layer
    low_enh = sum(layers.get("low_fps_enh", []))
    high_enh = sum(layers.get("high_fps_enh", []))
    print(f"\nlayer activity: high-FPS enh {high_enh:.0f} kbps-s, "
          f"low-FPS enh {low_enh:.0f} kbps-s")

    assert result.peak_delay_ms() > 1_000
    assert FpsMode.LOW in result.modes_seen()
    duration = result.series.window_s[-1]
    assert result.fps_during(0, duration / 3) > 24
    assert result.fps_during(duration / 3, duration) < 20
    # The low-FPS enhancement identifier only appears after the switch.
    assert low_enh > 0 and high_enh > 0
