"""Fig 5 — Delay spread introduced in the RAN uplink.

Paper: media units leave the sender back-to-back (spread ≈ 0) but the RAN
uplink "spreads out the one-way delay of samples and frames at the receiver
in increments of 2.5 ms", up to ~30 ms.
"""

import numpy as np

from repro.experiments import run_fig5

from .conftest import banner


def test_fig5_delay_spread(once):
    result = once(run_fig5, duration_s=40.0, seed=7)
    print(banner(
        "Fig 5: delay spread at sender vs 5G core",
        "sender ~0; core quantized in 2.5 ms increments",
    ))
    print(result.summary())

    assert np.median(result.sender_ms) < 0.5
    assert np.percentile(result.core_ms, 75) >= 2.5
    assert max(result.core_ms) >= 7.5
    assert result.quantization_step_ms == 2.5
    assert result.quantization_score < 0.05
