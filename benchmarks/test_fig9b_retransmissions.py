"""Fig 9(b) — Link-layer retransmissions inflate packet delay by 10 ms.

Paper: a failed TB is retransmitted 10 ms later, inflating the delay of the
packets it carries by 10 ms (and by multiples under repeated failure); the
base station even mandates retransmission of *empty* TBs, wasting capacity.
"""

from repro.experiments import run_fig9b

from .conftest import banner


def test_fig9b_retransmissions(once):
    result = once(run_fig9b, duration_s=30.0, seed=7, bler=0.25)
    print(banner(
        "Fig 9b: HARQ retransmissions in the TB schedule",
        "retx packets ~10 ms later than clean ones; empty TBs retransmitted",
    ))
    print(result.summary())

    assert result.retx_tbs > 0.1 * result.total_tbs
    assert result.empty_retx_tbs > 0
    assert abs(result.mean_inflation_step_ms() - 10.0) < 2.0
