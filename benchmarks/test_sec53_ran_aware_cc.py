"""§5.3 — More RAN-aware applications.

Paper: the RAN can export per-packet telemetry (or mask RAN-induced delay in
congestion-control feedback) so delay-based controllers stop reacting to
scheduling/HARQ artifacts that carry no congestion information.
"""

from repro.experiments import run_sec53

from .conftest import banner


def test_sec53_ran_aware_cc(once):
    result = once(run_sec53, duration_s=60.0, seed=7)
    print(banner(
        "§5.3: vanilla GCC vs RAN-aware GCC (PHY-delay masking)",
        "phantom overuse detections largely disappear under masking",
    ))
    print(result.summary())

    comparison = result.comparison
    assert comparison.samples > 5_000
    assert comparison.vanilla_overuse_count > 10
    assert comparison.improvement_factor > 1.3
    assert comparison.masked_overuse_fraction < comparison.vanilla_overuse_fraction
