"""Fig 7 — 5G degradation vs an equal-capacity wired network.

Paper: with the wired baseline shaped to the cell's TB-derived capacity
behind a fixed 15 ms latency, "5G consistently delivers lower quality both
with respect to bitrate and media-level jitter, as well as user-centric
metrics such as frame rate and picture quality".
"""

from repro.experiments import run_fig7

from .conftest import banner


def test_fig7_qoe_5g_vs_emulated(once):
    result = once(run_fig7, duration_s=60.0, seed=7)
    print(banner(
        "Fig 7: QoE on 5G vs tc-emulated wired baseline",
        "5G worse-or-equal on bitrate (7a), jitter (7b), fps (7c), SSIM (7d)",
    ))
    print(f"emulated baseline rate: {result.emulated_rate_kbps:.0f} kbps "
          "(from the 5G run's granted TB capacity)")
    print(result.summary())

    m5 = result.qoe_5g.medians()
    me = result.qoe_emulated.medians()
    assert m5["bitrate_kbps"] <= me["bitrate_kbps"]
    assert m5["jitter_ms"] > me["jitter_ms"]
    assert m5["fps"] <= me["fps"]
    assert m5["ssim"] <= me["ssim"]
    assert result.qoe_5g.stall_count >= result.qoe_emulated.stall_count
