"""Extension — diverse application classes over the same RAN (§5.1).

Paper: different traffic patterns care about different RAN artifacts.
Measured here: VCA suffers frame-level spread; cloud-gaming input pays the
TDD alignment tax; web bursts ride proactive grants; bulk uploads are
dominated by grant queueing.
"""

from repro.experiments import run_ext_app_classes

from .conftest import banner


def test_ext_app_classes(once):
    result = once(run_ext_app_classes, duration_s=30.0, seed=7)
    print(banner(
        "Extension: RAN delay anatomy per application class",
        "each traffic class is hit by a different RAN mechanism",
    ))
    print(result.summary())

    by_name = result.by_name()
    vca = by_name["video conferencing"]
    gaming = by_name["cloud gaming input"]
    web = by_name["web browsing"]
    upload = by_name["short-video upload"]

    # VCA: multi-packet frames -> spread is a first-order component.
    assert vca.burst_spread_p50_ms >= 2.5
    assert vca.spread_share + vca.queueing_share > 0.3
    # Gaming: single tiny packets -> pure TDD alignment, no queueing.
    assert gaming.alignment_share > 0.4
    assert gaming.queueing_share < 0.05
    assert gaming.burst_spread_p50_ms < 1.0
    # Upload: large bursts -> grant queueing dominates, huge burst spread.
    assert upload.queueing_share > 0.4
    assert upload.burst_spread_p50_ms > 50
    assert upload.owd_p50_ms > vca.owd_p50_ms
    # Web: sporadic small bursts land between gaming and VCA.
    assert gaming.owd_p50_ms <= web.owd_p50_ms <= upload.owd_p50_ms
