"""Extension — GCC across physical-layer contexts (§5.1 future work).

Paper: "we plan to use Athena to further measure [GCC] and work toward a
GCC simulator that evaluates video-conferencing behavior in various
physical-layer contexts ... different duplexing strategies ... resulting in
differing impacts on application-layer latencies."
"""

from repro.experiments import run_ext_gcc_contexts

from .conftest import banner


def test_ext_gcc_contexts(once):
    result = once(run_ext_gcc_contexts, duration_s=30.0, seed=7)
    print(banner(
        "Extension: GCC phantom-overuse rate per PHY context",
        "sparser uplink slots and higher BLER mislead the gradient filter "
        "more; FDD is the cleanest",
    ))
    print(result.summary())

    by_label = result.by_label()
    fdd = by_label["FDD, clean channel"]
    default = by_label["TDD DDDSU, BLER 8%"]
    sparse = by_label["TDD DDDDDDDDSU (sparser UL)"]
    lossy = by_label["TDD DDDSU, BLER 25%"]
    clean = by_label["TDD DDDSU, clean channel"]

    # Duplexing: sparser uplink -> larger artifacts -> more phantom overuse.
    assert fdd.overuse_fraction < sparse.overuse_fraction
    assert fdd.gradient_std < sparse.gradient_std
    assert fdd.owd_p50_ms < default.owd_p50_ms < sparse.owd_p50_ms
    # Channel quality: heavy HARQ makes it worse than a clean channel.
    assert lossy.overuse_fraction > clean.overuse_fraction
    # Every context shows *some* phantom overuse — the paper's core point.
    assert all(p.overuse_fraction > 0 for p in result.points)
