"""Shared benchmark helpers.

Each benchmark regenerates one of the paper's figures at a reduced (but
representative) duration, prints the measured series next to the paper's
qualitative expectation, and asserts the shape.  ``pytest-benchmark`` wraps
the run so regeneration cost is tracked too.

Set ``ATHENA_SCALE`` (e.g. ``ATHENA_SCALE=10``) to multiply every
experiment duration toward the paper's 20-minute session.
"""

import os

import pytest

DURATION_SCALE = float(os.environ.get("ATHENA_SCALE", "1"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    ``duration_s`` keyword arguments are scaled by ``ATHENA_SCALE``.
    """
    if "duration_s" in kwargs and DURATION_SCALE != 1.0:
        kwargs = {**kwargs, "duration_s": kwargs["duration_s"] * DURATION_SCALE}
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture: ``once(fn, *args)`` benchmarks a single invocation."""

    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once


def banner(title, expectation):
    """Standard header for the printed comparison."""
    line = "=" * 72
    return f"\n{line}\n{title}\nPaper expectation: {expectation}\n{line}"
