"""§5.2 — A more application-aware RAN.

Paper: grants issued "exactly at the right times when a sample or frame is
generated" — via RTP metadata or learned traffic patterns — have "the
potential to cut the delay inflation experienced by frames in half".
"""

from repro.experiments import run_sec52

from .conftest import banner


def test_sec52_aware_ran(once):
    result = once(run_sec52, duration_s=30.0, seed=7)
    print(banner(
        "§5.2: default vs application-aware uplink grant scheduling",
        "frame completion delay cut at least in half; spread eliminated",
    ))
    print(result.summary())
    print(f"\nimprovement (metadata): "
          f"{result.improvement('aware(metadata)'):.2f}x")
    print(f"improvement (learned):  "
          f"{result.improvement('aware(learned)'):.2f}x")

    assert result.improvement("aware(metadata)") >= 2.0
    assert result.improvement("aware(learned)") >= 1.8
    assert result.outcomes["aware(metadata)"].median_spread() == 0.0
    # The metadata path also saves granted bandwidth vs blind proactive.
    assert (result.outcomes["aware(metadata)"].granted_kbps
            < result.outcomes["default"].granted_kbps)
