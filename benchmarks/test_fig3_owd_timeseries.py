"""Fig 3 — One-way delay in ICMP and Zoom RTP media traffic.

Paper: the 5G uplink (RTP 1-2) swings between ~40 and ~120 ms under cross
traffic, the SFU path (RTP 2-3*-4) shows moderate jitter from application-
layer processing, and ICMP probes over the same WAN are flat — so the RAN
uplink is the primary jitter source, the SFU secondary, the WAN negligible.
"""

from repro.experiments import run_fig3

from .conftest import banner


def test_fig3_owd_timeseries(once):
    result = once(run_fig3, duration_s=60.0, seed=7)
    print(banner(
        "Fig 3: one-way delay by path segment",
        "uplink jitter >> SFU-path jitter >> ICMP jitter; ICMP flat",
    ))
    print(result.summary())
    stats = result.jitter_stats()
    print("\njitter spread (p95-p5, ms):",
          {k: round(v["spread"], 2) for k, v in stats.items()})

    assert stats["rtp_sender_core"]["spread"] > 3 * stats[
        "rtp_core_receiver"]["spread"]
    assert stats["rtp_core_receiver"]["spread"] > stats["icmp"]["spread"]
    assert stats["icmp"]["spread"] < 2.0
