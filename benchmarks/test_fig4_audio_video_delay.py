"""Fig 4 — Zoom audio experiences lower RAN delay than video.

Paper: the audio CDF sits left of the video CDF (audio samples rarely span
multiple packets, so they dodge the frame-level delay spread), with a long
tail out to high delays under cross traffic.
"""

from repro.experiments import run_fig4

from .conftest import banner


def test_fig4_audio_video_delay(once):
    result = once(run_fig4, duration_s=60.0, seed=7)
    print(banner(
        "Fig 4: RAN (sender->core) delay CDF by media kind",
        "audio median < video median; long tails under load",
    ))
    print(result.summary())
    medians = result.medians()
    tails = result.tail(q=99)
    print(f"\nmedians: audio {medians['audio']:.1f} ms, "
          f"video {medians['video']:.1f} ms")
    print(f"p99 tails: audio {tails['audio']:.0f} ms, "
          f"video {tails['video']:.0f} ms")

    assert medians["audio"] < medians["video"]
    assert tails["video"] > 2 * medians["video"]
    assert tails["audio"] > 2 * medians["audio"]
