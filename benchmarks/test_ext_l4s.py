"""Extension — L4S accelerate/brake under predictable RAN artifacts (§5.3).

Paper (closing question): "how should control of the accelerate-brake
signal be defined in the presence of retransmissions due to (unpredictable)
loss versus the more predictable delay spikes and spreads that we observe
with Athena?"  Answer quantified here: a sojourn-only marker brakes the
sender to the floor on an *idle* cell; excluding the PHY-attributed
components (Athena's telemetry) leaves the signal clean.
"""

from repro.experiments import run_ext_l4s

from .conftest import banner


def test_ext_l4s_marking(once):
    result = once(run_ext_l4s, duration_s=30.0, seed=7)
    print(banner(
        "Extension: L4S CE marking, naive vs RAN-aware (idle cell)",
        "naive marker brakes on scheduling/HARQ artifacts; "
        "telemetry-aware marker stays quiet",
    ))
    print(result.summary())

    assert result.naive.mark_fraction > 0.15
    assert result.aware.mark_fraction < 0.01
    assert result.aware.final_rate_kbps > 3 * result.naive.final_rate_kbps
    assert result.aware.min_rate_kbps >= 900.0
