"""Simulator performance: these benches use pytest-benchmark's repeated
rounds (unlike the single-shot figure regenerations) to track the
engine's event throughput and the RAN slot loop's cost."""

from repro.app import ScenarioConfig, run_session
from repro.sim import Simulator


def test_perf_event_loop(benchmark):
    """Raw engine throughput: schedule+dispatch 50k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.call_later(10, tick)

        sim.at(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 50_000


def test_perf_one_second_call(benchmark):
    """Full-stack cost of one simulated second of a 5G call."""

    def run():
        result = run_session(
            ScenarioConfig(duration_s=1.0, seed=5, record_tbs=False,
                           start_prober=False)
        )
        return result.receiver.packets_received

    received = benchmark(run)
    assert received > 50
