"""Extension — the jitter-buffer tradeoff (§2's three VCA options).

Paper: VCAs can "expand the jitter buffer at the cost of increased
mouth-to-ear delay to better smooth out delay variations" or "accept a
higher risk of stalls in order to maintain low end-to-end latency".  The
sweep maps that frontier on a jittery 5G session.
"""

from repro.experiments import run_ext_jitterbuffer

from .conftest import banner


def test_ext_jitterbuffer_tradeoff(once):
    result = once(run_ext_jitterbuffer, duration_s=40.0, seed=7)
    print(banner(
        "Extension: jitter-buffer sizing - delay vs stalls",
        "bigger buffer -> higher mouth-to-ear delay, fewer stalls",
    ))
    print(result.summary())

    delays = [p.mouth_to_ear_ms for p in result.points]
    assert delays == sorted(delays)  # delay grows with the buffer
    smallest, largest = result.points[0], result.points[-1]
    assert smallest.stalls >= largest.stalls  # stalls shrink with the buffer
    assert smallest.stalls > 0  # a tight buffer does stall on 5G jitter
    assert largest.mouth_to_ear_ms > 2 * smallest.mouth_to_ear_ms
