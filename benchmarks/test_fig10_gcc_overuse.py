"""Fig 10 — GCC detects phantom overuse on an idle private 5G network.

Paper: with the mobile as the only user of the cell, the filtered one-way
delay gradient fluctuates with the RAN's scheduling artifacts and crosses
the adaptive threshold, repeatedly flagging overuse on an idle network.
"""

import numpy as np

from repro.experiments import run_fig10

from .conftest import banner


def test_fig10_gcc_overuse(once):
    result = once(run_fig10, duration_s=60.0, seed=7)
    print(banner(
        "Fig 10: GCC filtered delay gradient on an idle 5G cell",
        "gradient fluctuates; detector flags overuse despite zero load",
    ))
    print(result.summary())
    grads = result.gradient_series()
    hist, edges = np.histogram(grads, bins=7)
    print("\ngradient histogram:")
    for count, lo, hi in zip(hist, edges, edges[1:]):
        print(f"  [{lo:+.3f}, {hi:+.3f}): {count}")

    assert len(grads) > 5_000
    assert result.overuse_events() > 10
    assert 0.005 < result.history.overuse_fraction() < 0.5
    assert max(grads) > 0.05 and min(grads) < -0.05
