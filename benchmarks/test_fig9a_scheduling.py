"""Fig 9(a) — Link-layer scheduling introduces frame-level delay spread.

Paper: a frame's packet burst trickles out over proactive TBs (one or two
packets each, every 2.5 ms) until the BSR-requested grant arrives ~10 ms
later; requested grants sized to stale BSRs often go unused (over-granting).
"""

from repro.experiments import run_fig9a
from repro.sim import us_to_ms
from repro.trace import TbKind

from .conftest import banner


def test_fig9a_scheduling(once):
    result = once(run_fig9a, duration_s=20.0, seed=7)
    print(banner(
        "Fig 9a: packet timeline + TB schedule on an idle cell",
        "spread in 2.5 ms increments; requested TBs over-granted/unused",
    ))
    print(result.summary())
    tl = result.timeline
    print(f"\ntimeline window [{us_to_ms(tl.start_us):.1f}, "
          f"{us_to_ms(tl.end_us):.1f}] ms:")
    for packet in tl.packets[:12]:
        owd = (packet.core_us - packet.send_us) / 1_000 if packet.core_us else None
        print(f"  pkt {packet.packet_id} {packet.kind.value:5s} "
              f"send {us_to_ms(packet.send_us):7.1f} ms "
              f"owd {owd if owd is None else round(owd, 1)} ms "
              f"tbs {packet.tb_ids}")
    for tb in tl.transport_blocks[:16]:
        print(f"  TB {tb.tb_id} {tb.kind.value:9s} slot "
              f"{us_to_ms(tb.slot_us):7.1f} ms size {tb.size_bits:6d} "
              f"used {tb.used_bits:6d}")

    assert result.median_spread_ms() >= 2.5
    assert result.median_spread_ms() % 2.5 < 0.01
    assert result.unused_requested_tbs > 0.3 * result.requested_tbs
    assert result.requested_utilization < result.proactive_utilization
    # Used proactive TBs carry only 1-2 packets each.
    used_proactive = [tb for tb in tl.transport_blocks
                      if tb.kind == TbKind.PROACTIVE and not tb.is_empty]
    assert used_proactive
    assert all(1 <= len(tb.packet_ids) <= 3 for tb in used_proactive)
