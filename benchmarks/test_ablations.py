"""Ablations over the RAN design choices the paper discusses.

* §3.1: proactive grants reduce delay ~10 ms for sporadic packets, at the
  cost of wasted capacity;
* §3.1: the BSR scheduling delay sets the frame-tail latency;
* §3.2: the block error rate sets the HARQ delay-inflation tail;
* §5.1: duplexing strategy (TDD pattern density, FDD) changes the
  application-visible latency floor and the spread quantum.
"""

from repro.experiments import (
    sweep_bler,
    sweep_bsr_delay,
    sweep_duplexing,
    sweep_proactive,
)

from .conftest import banner


def test_ablation_proactive_grants(once):
    result = once(sweep_proactive, duration_s=20.0, seed=7)
    print(banner("Ablation: proactive grants on/off",
                 "~10 ms higher delay without proactive grants (SR+BSR loop)"))
    print(result.summary())
    with_pg, without = result.points
    assert without.owd_p50_ms - with_pg.owd_p50_ms >= 5.0


def test_ablation_bsr_delay(once):
    result = once(sweep_bsr_delay, duration_s=20.0, seed=7,
                  delays_ms=(5.0, 10.0, 20.0))
    print(banner("Ablation: BSR scheduling delay",
                 "frame-tail delay grows with the grant-loop latency"))
    print(result.summary())
    p95s = [p.owd_p95_ms for p in result.points]
    assert p95s == sorted(p95s)


def test_ablation_bler(once):
    result = once(sweep_bler, duration_s=20.0, seed=7,
                  blers=(0.0, 0.08, 0.25))
    print(banner("Ablation: block error rate",
                 "HARQ inflates the delay tail in 10 ms steps as BLER rises"))
    print(result.summary())
    p95s = [p.owd_p95_ms for p in result.points]
    assert p95s == sorted(p95s)
    assert p95s[-1] - p95s[0] >= 8.0


def test_ablation_duplexing(once):
    result = once(sweep_duplexing, duration_s=20.0, seed=7)
    print(banner("Ablation: duplexing strategy (§5.1)",
                 "denser uplink slots -> lower delay and spread; FDD lowest"))
    print(result.summary())
    by_label = {p.label: p for p in result.points}
    fdd = by_label["FDD (UL every slot)"]
    dense = by_label["TDD DDSUU (2xUL/2.5ms)"]
    default = by_label["TDD DDDSU (UL/2.5ms)"]
    sparse = by_label["TDD DDDDDDDDSU (UL/5ms)"]
    assert fdd.owd_p50_ms < default.owd_p50_ms
    assert dense.owd_p50_ms <= default.owd_p50_ms
    assert default.owd_p50_ms < sparse.owd_p50_ms
    assert fdd.spread_p50_ms < default.spread_p50_ms


def test_ablation_scheduler_policy(once):
    from repro.experiments import sweep_scheduler_policy

    result = once(sweep_scheduler_policy, duration_s=30.0, seed=7)
    print(banner("Ablation: grant-serving policy under overload",
                 "cell-wide FIFO starves the light VCA flow into "
                 "multi-second delays; round-robin protects it"))
    print(result.summary())
    rr, fifo = result.points
    assert fifo.owd_p95_ms > 10 * rr.owd_p95_ms
    assert fifo.owd_p95_ms > 1_000  # the Fig 8 regime


def test_ablation_rlc_mode(once):
    from repro.experiments import sweep_rlc_mode

    result = once(sweep_rlc_mode, duration_s=20.0, seed=7)
    print(banner("Ablation: RLC UM vs AM on a bad channel",
                 "AM trades packet loss for a longer delay tail"))
    print(result.summary())
    um, am = result.points
    assert am.owd_p95_ms > um.owd_p95_ms  # recovery inflates the tail
